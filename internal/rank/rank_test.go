package rank

import (
	"math/rand"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/types"
)

func v(name string) ast.Expr                       { return &ast.Var{Name: name} }
func nat(n int64) ast.Expr                         { return &ast.NatLit{Val: n} }
func sing(e ast.Expr) ast.Expr                     { return &ast.Singleton{Elem: e} }
func arith(op ast.ArithOp, l, r ast.Expr) ast.Expr { return &ast.Arith{Op: op, L: l, R: r} }
func cmp(op ast.CmpOp, l, r ast.Expr) ast.Expr     { return &ast.Cmp{Op: op, L: l, R: r} }
func proj(i, k int, e ast.Expr) ast.Expr           { return &ast.Proj{I: i, K: k, Tuple: e} }
func tup(es ...ast.Expr) ast.Expr                  { return &ast.Tuple{Elems: es} }
func bigU(h ast.Expr, x string, o ast.Expr) ast.Expr {
	return &ast.BigUnion{Head: h, Var: x, Over: o}
}

func run(t *testing.T, e ast.Expr, globals map[string]object.Value) object.Value {
	t.Helper()
	g := eval.Builtins()
	for k, val := range globals {
		g[k] = val
	}
	got, err := eval.New(g).Eval(e, nil)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return got
}

// --- Fragment checking ---------------------------------------------------------

func TestCheckFragments(t *testing.T) {
	pureNRC := bigU(sing(v("x")), "x", v("S"))
	withGen := bigU(sing(v("x")), "x", &ast.Gen{N: nat(5)})
	withSum := &ast.Sum{Head: nat(1), Var: "x", Over: v("S")}
	withArray := &ast.Dim{K: 1, Arr: v("A")}
	withRank := RankExpr(v("S"))
	withBagRank := BagRankExpr(v("B"))

	if err := Check(pureNRC, NRC); err != nil {
		t.Errorf("pure NRC rejected: %v", err)
	}
	if err := Check(withGen, NRC); err == nil {
		t.Error("gen accepted in NRC")
	}
	if err := Check(withGen, NRCAggrGen); err != nil {
		t.Errorf("gen rejected in NRC^aggr(gen): %v", err)
	}
	if err := Check(withSum, NRC); err == nil {
		t.Error("sum accepted in NRC")
	}
	if err := Check(withSum, NRCAggr); err != nil {
		t.Errorf("sum rejected in NRC^aggr: %v", err)
	}
	if err := Check(withArray, NRCAggrGen); err == nil {
		t.Error("array construct accepted in NRC^aggr(gen)")
	}
	if err := Check(withRank, NRCr); err != nil {
		t.Errorf("⋃_r rejected in NRC_r: %v", err)
	}
	if err := Check(withRank, NRCAggrGen); err == nil {
		t.Error("⋃_r accepted in NRC^aggr(gen)")
	}
	if err := Check(withBagRank, NBCr); err != nil {
		t.Errorf("⊎_r rejected in NBC_r: %v", err)
	}
	if err := Check(withBagRank, NRCr); err == nil {
		t.Error("⊎_r accepted in NRC_r")
	}
	if err := Check(pureNRC, NBCr); err == nil {
		t.Error("set construct accepted in NBC_r")
	}
}

// --- The object translation ------------------------------------------------------

func TestTranslateValueGraphs(t *testing.T) {
	A := object.NatVector(7, 8, 9)
	g, err := TranslateValue(A)
	if err != nil {
		t.Fatal(err)
	}
	want := object.Set(
		object.Tuple(object.Nat(0), object.Nat(7)),
		object.Tuple(object.Nat(1), object.Nat(8)),
		object.Tuple(object.Nat(2), object.Nat(9)))
	if !object.Equal(g, want) {
		t.Errorf("A° = %s, want %s", g, want)
	}
	back, err := UntranslateValue(g, types.MustParse("[[nat]]"))
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(back, A) {
		t.Errorf("round trip = %s", back)
	}
}

func TestTranslateNested(t *testing.T) {
	// An array of arrays translates both levels.
	A := object.Vector(object.NatVector(1), object.NatVector(2, 3))
	typ := types.MustParse("[[[[nat]]]]")
	g, err := TranslateValue(A)
	if err != nil {
		t.Fatal(err)
	}
	// Outer graph with inner graphs as values.
	if g.Kind != object.KSet || len(g.Elems) != 2 {
		t.Fatalf("outer translation = %s", g)
	}
	inner := g.Elems[0].Elems[1]
	if inner.Kind != object.KSet {
		t.Errorf("inner array not translated: %s", inner)
	}
	back, err := UntranslateValue(g, typ)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(back, A) {
		t.Errorf("nested round trip = %s", back)
	}
}

func TestTranslateMultiDim(t *testing.T) {
	M := object.MustArray([]int{2, 2}, []object.Value{
		object.Nat(1), object.Nat(2), object.Nat(3), object.Nat(4)})
	g, err := TranslateValue(M)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UntranslateValue(g, types.MustParse("[[nat]]_2"))
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(back, M) {
		t.Errorf("2-d round trip = %s", back)
	}
}

func TestUntranslateRejectsHoles(t *testing.T) {
	// {(0,a), (2,b)} has a hole at 1 and is not an array encoding.
	bad := object.Set(
		object.Tuple(object.Nat(0), object.Nat(1)),
		object.Tuple(object.Nat(2), object.Nat(2)))
	if _, err := UntranslateValue(bad, types.MustParse("[[nat]]")); err == nil {
		t.Error("holes should be rejected")
	}
}

func TestPropTranslateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(6)
		data := make([]object.Value, n)
		for i := range data {
			data[i] = object.Nat(int64(rng.Intn(10)))
		}
		A := object.Vector(data...)
		g, err := TranslateValue(A)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UntranslateValue(g, types.MustParse("[[nat]]"))
		if err != nil {
			t.Fatal(err)
		}
		if !object.Equal(back, A) {
			t.Fatalf("trial %d: %s -> %s -> %s", trial, A, g, back)
		}
	}
}

// --- Theorem 6.1: NRCA ≡ NRC^aggr(gen), empirically -----------------------------

// The pairs below implement the same operation twice: natively with array
// constructs, and in NRC^aggr(gen) over the translated (graph) encoding.
// Agreement through the translation on random inputs demonstrates the
// nontrivial inclusion of Theorem 6.1.

// lenNative = dim_1(A); lenEncoded = Σ{1 | x ∈ G}.
func lenEncoded(g ast.Expr) ast.Expr {
	return &ast.Sum{Head: nat(1), Var: "x", Over: g}
}

// tabulateNative = [[ i*i+1 | i < n ]];
// tabulateEncoded = ⋃{ {(i, i*i+1)} | i ∈ gen(n) }.
func tabulateNative(n ast.Expr) ast.Expr {
	return &ast.ArrayTab{
		Head:   arith(ast.OpAdd, arith(ast.OpMul, v("i"), v("i")), nat(1)),
		Idx:    []string{"i"},
		Bounds: []ast.Expr{n},
	}
}

func tabulateEncoded(n ast.Expr) ast.Expr {
	return bigU(sing(tup(v("i"), arith(ast.OpAdd, arith(ast.OpMul, v("i"), v("i")), nat(1)))),
		"i", &ast.Gen{N: n})
}

// zipEncoded joins the two graphs on equal indices:
// ⋃{ ⋃{ if π1 x = π1 y then {(π1 x, (π2 x, π2 y))} else {} | y ∈ H} | x ∈ G}.
func zipEncoded(g, h ast.Expr) ast.Expr {
	inner := bigU(&ast.If{
		Cond: cmp(ast.OpEq, proj(1, 2, v("x")), proj(1, 2, v("y"))),
		Then: sing(tup(proj(1, 2, v("x")), tup(proj(2, 2, v("x")), proj(2, 2, v("y"))))),
		Else: &ast.EmptySet{},
	}, "y", h)
	return bigU(inner, "x", g)
}

// zipNative = [[ (A[i], B[i]) | i < min{len A, len B} ]].
func zipNative(a, b ast.Expr) ast.Expr {
	return &ast.ArrayTab{
		Head: tup(&ast.Subscript{Arr: a, Index: v("m")}, &ast.Subscript{Arr: b, Index: v("m")}),
		Idx:  []string{"m"},
		Bounds: []ast.Expr{&ast.App{
			Fn: v("min"),
			Arg: &ast.Union{
				L: sing(&ast.Dim{K: 1, Arr: a}),
				R: sing(&ast.Dim{K: 1, Arr: b})}}},
	}
}

func TestTheorem61(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	arrType := types.MustParse("[[nat]]")
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(7), rng.Intn(7)
		mk := func(n int) object.Value {
			data := make([]object.Value, n)
			for i := range data {
				data[i] = object.Nat(int64(rng.Intn(20)))
			}
			return object.Vector(data...)
		}
		A, B := mk(na), mk(nb)
		Ag, err := TranslateValue(A)
		if err != nil {
			t.Fatal(err)
		}
		Bg, err := TranslateValue(B)
		if err != nil {
			t.Fatal(err)
		}
		globals := map[string]object.Value{"A": A, "B": B, "G": Ag, "H": Bg}

		// len agrees.
		native := run(t, &ast.Dim{K: 1, Arr: v("A")}, globals)
		encoded := run(t, lenEncoded(v("G")), globals)
		if !object.Equal(native, encoded) {
			t.Fatalf("len: %s vs %s", native, encoded)
		}

		// tabulation agrees through the translation.
		n := ast.Expr(nat(int64(rng.Intn(6))))
		tabN := run(t, tabulateNative(n), globals)
		tabE := run(t, tabulateEncoded(n), globals)
		tabNg, err := TranslateValue(tabN)
		if err != nil {
			t.Fatal(err)
		}
		if !object.Equal(tabNg, tabE) {
			t.Fatalf("tabulate: %s° = %s vs %s", tabN, tabNg, tabE)
		}

		// zip agrees through the translation (the min-length truncation
		// falls out of the join over rectangular domains).
		zipN := run(t, zipNative(v("A"), v("B")), globals)
		zipE := run(t, zipEncoded(v("G"), v("H")), globals)
		zipNg, err := TranslateValue(zipN)
		if err != nil {
			t.Fatal(err)
		}
		if !object.Equal(zipNg, zipE) {
			t.Fatalf("zip: %s vs %s", zipNg, zipE)
		}

		// Fragment sanity: the encoded sides really avoid array constructs.
		for _, e := range []ast.Expr{lenEncoded(v("G")), tabulateEncoded(n), zipEncoded(v("G"), v("H"))} {
			if err := Check(e, NRCAggrGen); err != nil {
				t.Fatalf("encoded query outside NRC^aggr(gen): %v", err)
			}
		}
		// And round-tripping the encoding recovers the native array.
		back, err := UntranslateValue(Ag, arrType)
		if err != nil {
			t.Fatal(err)
		}
		if !object.Equal(back, A) {
			t.Fatalf("untranslate: %s vs %s", back, A)
		}
	}
}

// --- Theorem 6.2: ranking gives the power of arrays ------------------------------

// reverseNRCr reverses an encoded array using ⋃_r: the rank of (i, v) in
// the graph's canonical order is i+1, so
// reverse° = ⋃_r{ {(n - i, π2 x)} | x_i ∈ G } with n = Σ{1 | x ∈ G}.
func reverseNRCr(g ast.Expr) ast.Expr {
	body := sing(tup(arith(ast.OpSub, lenEncoded(g), v("i")), proj(2, 2, v("x"))))
	return &ast.RankUnion{Head: body, Var: "x", RankVar: "i", Over: g}
}

// evenposNRCr keeps graph entries with even index, halving the index:
// ⋃_r{ if (i-1) % 2 = 0 then {((i-1)/2, π2 x)} else {} | x_i ∈ G }.
func evenposNRCr(g ast.Expr) ast.Expr {
	im1 := arith(ast.OpSub, v("i"), nat(1))
	body := &ast.If{
		Cond: cmp(ast.OpEq, arith(ast.OpMod, im1, nat(2)), nat(0)),
		Then: sing(tup(arith(ast.OpDiv, im1, nat(2)), proj(2, 2, v("x")))),
		Else: &ast.EmptySet{},
	}
	return &ast.RankUnion{Head: body, Var: "x", RankVar: "i", Over: g}
}

func TestTheorem62(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(8)
		data := make([]object.Value, n)
		for i := range data {
			data[i] = object.Nat(int64(rng.Intn(20)))
		}
		A := object.Vector(data...)
		G, err := TranslateValue(A)
		if err != nil {
			t.Fatal(err)
		}
		globals := map[string]object.Value{"A": A, "G": G}

		// reverse.
		revNative := run(t, &ast.ArrayTab{
			Head: &ast.Subscript{Arr: v("A"),
				Index: arith(ast.OpSub, arith(ast.OpSub, &ast.Dim{K: 1, Arr: v("A")}, v("i")), nat(1))},
			Idx:    []string{"i"},
			Bounds: []ast.Expr{&ast.Dim{K: 1, Arr: v("A")}},
		}, globals)
		revEncoded := run(t, reverseNRCr(v("G")), globals)
		revNativeG, err := TranslateValue(revNative)
		if err != nil {
			t.Fatal(err)
		}
		// reverse° indexes run 1..n in the ⋃_r encoding (n - i for rank
		// i = 1..n gives n-1 .. 0); both sides must agree as graphs.
		if !object.Equal(revNativeG, revEncoded) {
			t.Fatalf("reverse: %s vs %s", revNativeG, revEncoded)
		}

		// evenpos.
		evenNative := run(t, &ast.ArrayTab{
			Head:   &ast.Subscript{Arr: v("A"), Index: arith(ast.OpMul, v("i"), nat(2))},
			Idx:    []string{"i"},
			Bounds: []ast.Expr{arith(ast.OpDiv, &ast.Dim{K: 1, Arr: v("A")}, nat(2))},
		}, globals)
		evenEncoded := run(t, evenposNRCr(v("G")), globals)
		evenNativeG, err := TranslateValue(evenNative)
		if err != nil {
			t.Fatal(err)
		}
		// evenpos truncates at len/2; the encoded version keeps all even
		// positions, which differ when the length is odd — align by
		// restricting to the native length.
		if n%2 == 1 && len(evenEncoded.Elems) == len(evenNativeG.Elems)+1 {
			evenEncoded = object.SetFromSorted(evenEncoded.Elems[:len(evenEncoded.Elems)-1])
		}
		if !object.Equal(evenNativeG, evenEncoded) {
			t.Fatalf("evenpos (n=%d): %s vs %s", n, evenNativeG, evenEncoded)
		}

		if err := Check(reverseNRCr(v("G")), NRCr); err != nil {
			t.Fatalf("reverse outside NRC_r: %v", err)
		}
		if err := Check(evenposNRCr(v("G")), NRCr); err != nil {
			t.Fatalf("evenpos outside NRC_r: %v", err)
		}
	}
}

func TestRankOperator(t *testing.T) {
	X := object.Set(object.Nat(30), object.Nat(10), object.Nat(20))
	got := run(t, RankExpr(v("X")), map[string]object.Value{"X": X})
	want := object.Set(
		object.Tuple(object.Nat(10), object.Nat(1)),
		object.Tuple(object.Nat(20), object.Nat(2)),
		object.Tuple(object.Nat(30), object.Nat(3)))
	if !object.Equal(got, want) {
		t.Errorf("rank = %s", got)
	}
	B := object.Bag(object.Nat(5), object.Nat(5))
	gotB := run(t, BagRankExpr(v("B")), map[string]object.Value{"B": B})
	wantB := object.Bag(
		object.Tuple(object.Nat(5), object.Nat(1)),
		object.Tuple(object.Nat(5), object.Nat(2)))
	if !object.Equal(gotB, wantB) {
		t.Errorf("bag rank = %s", gotB)
	}
}

func TestFragmentStrings(t *testing.T) {
	for f, want := range map[Fragment]string{
		NRC: "NRC", NRCAggr: "NRC^aggr", NRCAggrGen: "NRC^aggr(gen)",
		NRCr: "NRC_r", NBCr: "NBC_r",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestTranslateValueErrors(t *testing.T) {
	fn := object.Func(func(v object.Value) (object.Value, error) { return v, nil })
	if _, err := TranslateValue(fn); err == nil {
		t.Error("function value translated")
	}
	// Bags and tuples recurse.
	b := object.Bag(object.NatVector(1), object.NatVector(2))
	got, err := TranslateValue(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != object.KBag || got.Elems[0].Kind != object.KSet {
		t.Errorf("bag of arrays translated to %s", got)
	}
	tu := object.Tuple(object.NatVector(1), object.Nat(2))
	got, err = TranslateValue(tu)
	if err != nil {
		t.Fatal(err)
	}
	if got.Elems[0].Kind != object.KSet {
		t.Errorf("tuple of arrays translated to %s", got)
	}
}

func TestUntranslateValueErrors(t *testing.T) {
	// Value shape must match the type.
	cases := []struct {
		v   object.Value
		typ string
	}{
		{object.Nat(1), "[[nat]]"},                                        // not a set encoding
		{object.Set(object.Nat(1)), "[[nat]]"},                            // elements not pairs
		{object.Nat(1), "nat * nat"},                                      // not a tuple
		{object.Nat(1), "{nat}"},                                          // not a set
		{object.Set(object.Tuple(object.True, object.Nat(0))), "[[nat]]"}, // bad key
	}
	for _, tc := range cases {
		if _, err := UntranslateValue(tc.v, types.MustParse(tc.typ)); err == nil {
			t.Errorf("UntranslateValue(%s, %s) accepted", tc.v, tc.typ)
		}
	}
	// Bag and tuple types recurse on the way back.
	enc := object.Bag(object.Set(object.Tuple(object.Nat(0), object.Nat(7))))
	back, err := UntranslateValue(enc, types.MustParse("{|[[nat]]|}"))
	if err != nil {
		t.Fatal(err)
	}
	want := object.Bag(object.NatVector(7))
	if !object.Equal(back, want) {
		t.Errorf("bag round trip = %s", back)
	}
}
