package eval

import (
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
)

// Shorthand AST constructors for tests.
func v(name string) ast.Expr                       { return &ast.Var{Name: name} }
func nat(n int64) ast.Expr                         { return &ast.NatLit{Val: n} }
func app(f, a ast.Expr) ast.Expr                   { return &ast.App{Fn: f, Arg: a} }
func lam(p string, b ast.Expr) ast.Expr            { return &ast.Lam{Param: p, Body: b} }
func sing(e ast.Expr) ast.Expr                     { return &ast.Singleton{Elem: e} }
func arith(op ast.ArithOp, l, r ast.Expr) ast.Expr { return &ast.Arith{Op: op, L: l, R: r} }
func cmp(op ast.CmpOp, l, r ast.Expr) ast.Expr     { return &ast.Cmp{Op: op, L: l, R: r} }
func bigU(h ast.Expr, x string, o ast.Expr) ast.Expr {
	return &ast.BigUnion{Head: h, Var: x, Over: o}
}
func tab(h ast.Expr, idx []string, bounds ...ast.Expr) ast.Expr {
	return &ast.ArrayTab{Head: h, Idx: idx, Bounds: bounds}
}
func sub(a, i ast.Expr) ast.Expr     { return &ast.Subscript{Arr: a, Index: i} }
func dim(k int, a ast.Expr) ast.Expr { return &ast.Dim{K: k, Arr: a} }

// run evaluates e with the builtin globals plus the given extra bindings.
func run(t *testing.T, e ast.Expr, extra map[string]object.Value) object.Value {
	t.Helper()
	globals := Builtins()
	for k, val := range extra {
		globals[k] = val
	}
	got, err := New(globals).Eval(e, nil)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return got
}

func expect(t *testing.T, e ast.Expr, extra map[string]object.Value, want object.Value) {
	t.Helper()
	got := run(t, e, extra)
	if !object.Equal(got, want) {
		t.Errorf("Eval(%s) = %s, want %s", e, got, want)
	}
}

// --- E1 conformance: one test per row of figure 1 ------------------------

func TestFig1Functions(t *testing.T) {
	// (λx. x + 1)(41) = 42
	expect(t, app(lam("x", arith(ast.OpAdd, v("x"), nat(1))), nat(41)), nil, object.Nat(42))
	// Closures capture their environment: (λx. λy. x + y)(40)(2) = 42.
	e := app(app(lam("x", lam("y", arith(ast.OpAdd, v("x"), v("y")))), nat(40)), nat(2))
	expect(t, e, nil, object.Nat(42))
}

func TestFig1Products(t *testing.T) {
	pair := &ast.Tuple{Elems: []ast.Expr{nat(1), nat(2), nat(3)}}
	expect(t, &ast.Proj{I: 2, K: 3, Tuple: pair}, nil, object.Nat(2))
	expect(t, pair, nil, object.Tuple(object.Nat(1), object.Nat(2), object.Nat(3)))
}

func TestFig1Sets(t *testing.T) {
	expect(t, &ast.EmptySet{}, nil, object.EmptySet)
	expect(t, sing(nat(7)), nil, object.Set(object.Nat(7)))
	expect(t, &ast.Union{L: sing(nat(1)), R: sing(nat(2))}, nil, object.Set(object.Nat(1), object.Nat(2)))
	// ⋃{ {x+1} | x ∈ {1,2} } = {2,3}
	in := object.Set(object.Nat(1), object.Nat(2))
	e := bigU(sing(arith(ast.OpAdd, v("x"), nat(1))), "x", v("S"))
	expect(t, e, map[string]object.Value{"S": in}, object.Set(object.Nat(2), object.Nat(3)))
}

func TestFig1Booleans(t *testing.T) {
	expect(t, &ast.BoolLit{Val: true}, nil, object.True)
	expect(t, &ast.If{Cond: cmp(ast.OpLt, nat(1), nat(2)), Then: nat(10), Else: nat(20)}, nil, object.Nat(10))
	expect(t, &ast.If{Cond: cmp(ast.OpGe, nat(1), nat(2)), Then: nat(10), Else: nat(20)}, nil, object.Nat(20))
	for _, tc := range []struct {
		op   ast.CmpOp
		want bool
	}{
		{ast.OpEq, false}, {ast.OpNe, true}, {ast.OpLt, true},
		{ast.OpGt, false}, {ast.OpLe, true}, {ast.OpGe, false},
	} {
		expect(t, cmp(tc.op, nat(1), nat(2)), nil, object.Bool(tc.want))
	}
	// Comparisons lift to complex objects through the linear order.
	s1 := object.Set(object.Nat(1))
	s2 := object.Set(object.Nat(1), object.Nat(2))
	e := cmp(ast.OpLt, v("a"), v("b"))
	expect(t, e, map[string]object.Value{"a": s1, "b": s2}, object.True)
}

func TestFig1Naturals(t *testing.T) {
	expect(t, arith(ast.OpAdd, nat(2), nat(3)), nil, object.Nat(5))
	expect(t, arith(ast.OpMul, nat(2), nat(3)), nil, object.Nat(6))
	expect(t, arith(ast.OpDiv, nat(7), nat(2)), nil, object.Nat(3))
	expect(t, arith(ast.OpMod, nat(7), nat(2)), nil, object.Nat(1))
	// Subtraction is monus: 2 - 5 = 0.
	expect(t, arith(ast.OpSub, nat(2), nat(5)), nil, object.Nat(0))
	expect(t, arith(ast.OpSub, nat(5), nat(2)), nil, object.Nat(3))
	// gen(4) = {0,1,2,3}
	expect(t, &ast.Gen{N: nat(4)}, nil,
		object.Set(object.Nat(0), object.Nat(1), object.Nat(2), object.Nat(3)))
	expect(t, &ast.Gen{N: nat(0)}, nil, object.EmptySet)
	// Σ{ x*x | x ∈ gen(4) } = 0+1+4+9 = 14
	e := &ast.Sum{Head: arith(ast.OpMul, v("x"), v("x")), Var: "x", Over: &ast.Gen{N: nat(4)}}
	expect(t, e, nil, object.Nat(14))
}

func TestFig1ArrayTabulation(t *testing.T) {
	// [[ i*2 | i < 4 ]] = [[0, 2, 4, 6]]
	e := tab(arith(ast.OpMul, v("i"), nat(2)), []string{"i"}, nat(4))
	expect(t, e, nil, object.NatVector(0, 2, 4, 6))
	// 2-dimensional: [[ i*10 + j | i < 2, j < 3 ]]
	e2 := tab(arith(ast.OpAdd, arith(ast.OpMul, v("i"), nat(10)), v("j")), []string{"i", "j"}, nat(2), nat(3))
	want := object.MustArray([]int{2, 3}, []object.Value{
		object.Nat(0), object.Nat(1), object.Nat(2),
		object.Nat(10), object.Nat(11), object.Nat(12)})
	expect(t, e2, nil, want)
}

func TestFig1Subscript(t *testing.T) {
	A := object.NatVector(5, 6, 7)
	expect(t, sub(v("A"), nat(1)), map[string]object.Value{"A": A}, object.Nat(6))
	// Out of bounds is ⊥.
	got := run(t, sub(v("A"), nat(9)), map[string]object.Value{"A": A})
	if !got.IsBottom() {
		t.Errorf("A[9] = %s, want bottom", got)
	}
	// Multidimensional subscript with a tuple index.
	M := object.MustArray([]int{2, 2}, []object.Value{object.Nat(1), object.Nat(2), object.Nat(3), object.Nat(4)})
	e := sub(v("M"), &ast.Tuple{Elems: []ast.Expr{nat(1), nat(1)}})
	expect(t, e, map[string]object.Value{"M": M}, object.Nat(4))
}

func TestFig1Dim(t *testing.T) {
	A := object.NatVector(5, 6, 7)
	expect(t, dim(1, v("A")), map[string]object.Value{"A": A}, object.Nat(3))
	M := object.MustArray([]int{2, 3}, make([]object.Value, 6))
	expect(t, dim(2, v("M")), map[string]object.Value{"M": M}, object.Tuple(object.Nat(2), object.Nat(3)))
	// dim with the wrong dimensionality is a static/kind error.
	ev := New(nil)
	if _, err := ev.Eval(dim(1, v("M")), (&Env{}).Bind("M", M)); err == nil {
		t.Error("dim_1 of a 2-d array should error")
	}
}

func TestFig1Index(t *testing.T) {
	// index({(1,"a"), (3,"b"), (1,"c")}) — the paper's example.
	s := object.Set(
		object.Tuple(object.Nat(1), object.String_("a")),
		object.Tuple(object.Nat(3), object.String_("b")),
		object.Tuple(object.Nat(1), object.String_("c")),
	)
	want := object.Vector(object.EmptySet,
		object.Set(object.String_("a"), object.String_("c")),
		object.EmptySet, object.Set(object.String_("b")))
	expect(t, &ast.Index{K: 1, Set: v("S")}, map[string]object.Value{"S": s}, want)
}

func TestFig1Get(t *testing.T) {
	expect(t, &ast.Get{Set: sing(nat(9))}, nil, object.Nat(9))
	if got := run(t, &ast.Get{Set: &ast.EmptySet{}}, nil); !got.IsBottom() {
		t.Errorf("get({}) = %s, want bottom", got)
	}
	two := &ast.Union{L: sing(nat(1)), R: sing(nat(2))}
	if got := run(t, &ast.Get{Set: two}, nil); !got.IsBottom() {
		t.Errorf("get on 2-set = %s, want bottom", got)
	}
}

// --- Derived operations from section 2 -------------------------------------

// mapArr builds map f A = [[ f(A[i]) | i < len(A) ]].
func mapArr(f, a ast.Expr) ast.Expr {
	return tab(app(f, sub(a, v("i"))), []string{"i"}, dim(1, a))
}

func TestDerivedMap(t *testing.T) {
	A := object.NatVector(1, 2, 3)
	e := mapArr(lam("x", arith(ast.OpMul, v("x"), v("x"))), v("A"))
	expect(t, e, map[string]object.Value{"A": A}, object.NatVector(1, 4, 9))
}

func TestDerivedZip(t *testing.T) {
	// zip(A,B) = [[ (A[i], B[i]) | i < min{len A, len B} ]]
	e := tab(
		&ast.Tuple{Elems: []ast.Expr{sub(v("A"), v("i")), sub(v("B"), v("i"))}},
		[]string{"i"},
		app(v("min"), &ast.Union{L: sing(dim(1, v("A"))), R: sing(dim(1, v("B")))}),
	)
	A := object.NatVector(1, 2, 3)
	B := object.NatVector(10, 20)
	want := object.Vector(
		object.Tuple(object.Nat(1), object.Nat(10)),
		object.Tuple(object.Nat(2), object.Nat(20)))
	expect(t, e, map[string]object.Value{"A": A, "B": B}, want)
}

func TestDerivedReverseEvenpos(t *testing.T) {
	A := object.NatVector(1, 2, 3, 4, 5)
	// reverse A = [[ A[len(A) - i - 1] | i < len(A) ]]
	rev := tab(sub(v("A"), arith(ast.OpSub, arith(ast.OpSub, dim(1, v("A")), v("i")), nat(1))),
		[]string{"i"}, dim(1, v("A")))
	expect(t, rev, map[string]object.Value{"A": A}, object.NatVector(5, 4, 3, 2, 1))
	// evenpos A = [[ A[i*2] | i < len(A)/2 ]] — note: paper uses len/2.
	even := tab(sub(v("A"), arith(ast.OpMul, v("i"), nat(2))),
		[]string{"i"}, arith(ast.OpDiv, dim(1, v("A")), nat(2)))
	expect(t, even, map[string]object.Value{"A": A}, object.NatVector(1, 3))
}

func TestDerivedTransposeAndMultiply(t *testing.T) {
	M := object.MustArray([]int{2, 3}, []object.Value{
		object.Nat(1), object.Nat(2), object.Nat(3),
		object.Nat(4), object.Nat(5), object.Nat(6)})
	// transpose M = [[ M[i,j] | j < dim2, i < dim1 ]]
	tr := tab(sub(v("M"), &ast.Tuple{Elems: []ast.Expr{v("i"), v("j")}}),
		[]string{"j", "i"},
		&ast.Proj{I: 2, K: 2, Tuple: dim(2, v("M"))},
		&ast.Proj{I: 1, K: 2, Tuple: dim(2, v("M"))})
	want := object.MustArray([]int{3, 2}, []object.Value{
		object.Nat(1), object.Nat(4),
		object.Nat(2), object.Nat(5),
		object.Nat(3), object.Nat(6)})
	expect(t, tr, map[string]object.Value{"M": M}, want)

	// multiply(M, N) with N = transpose M: result is 2x2.
	N := want
	mult := tab(
		&ast.Sum{
			Head: arith(ast.OpMul,
				sub(v("M"), &ast.Tuple{Elems: []ast.Expr{v("i"), v("j")}}),
				sub(v("N"), &ast.Tuple{Elems: []ast.Expr{v("j"), v("k")}})),
			Var:  "j",
			Over: &ast.Gen{N: &ast.Proj{I: 2, K: 2, Tuple: dim(2, v("M"))}},
		},
		[]string{"i", "k"},
		&ast.Proj{I: 1, K: 2, Tuple: dim(2, v("M"))},
		&ast.Proj{I: 2, K: 2, Tuple: dim(2, v("N"))})
	wantMult := object.MustArray([]int{2, 2}, []object.Value{
		object.Nat(14), object.Nat(32),
		object.Nat(32), object.Nat(77)})
	expect(t, mult, map[string]object.Value{"M": M, "N": N}, wantMult)
}

// --- Aggregates from section 2 ---------------------------------------------

func TestAggregates(t *testing.T) {
	// count(X) = Σ{1 | x ∈ X}
	X := object.Set(object.Nat(4), object.Nat(7), object.Nat(9))
	countE := &ast.Sum{Head: nat(1), Var: "x", Over: v("X")}
	expect(t, countE, map[string]object.Value{"X": X}, object.Nat(3))
	// min via primitive
	expect(t, app(v("min"), v("X")), map[string]object.Value{"X": X}, object.Nat(4))
	expect(t, app(v("max"), v("X")), map[string]object.Value{"X": X}, object.Nat(9))
	if got := run(t, app(v("min"), &ast.EmptySet{}), nil); !got.IsBottom() {
		t.Errorf("min({}) = %s, want bottom", got)
	}
	// member
	e := app(v("member"), &ast.Tuple{Elems: []ast.Expr{nat(7), v("X")}})
	expect(t, e, map[string]object.Value{"X": X}, object.True)
	// count primitive
	expect(t, app(v("count"), v("X")), map[string]object.Value{"X": X}, object.Nat(3))
	// not
	expect(t, app(v("not"), &ast.BoolLit{Val: false}), nil, object.True)
}

// --- Errors and bottom propagation -----------------------------------------

func TestBottomPropagation(t *testing.T) {
	bot := &ast.Bottom{}
	cases := []ast.Expr{
		arith(ast.OpAdd, bot, nat(1)),
		arith(ast.OpAdd, nat(1), bot),
		cmp(ast.OpEq, bot, nat(1)),
		sing(bot),
		&ast.Union{L: sing(nat(1)), R: bot},
		&ast.Tuple{Elems: []ast.Expr{nat(1), bot}},
		&ast.Get{Set: bot},
		&ast.Gen{N: bot},
		&ast.If{Cond: bot, Then: nat(1), Else: nat(2)},
		tab(bot, []string{"i"}, nat(2)),
		tab(v("i"), []string{"i"}, bot),
		sub(bot, nat(0)),
		dim(1, bot),
		&ast.Index{K: 1, Set: bot},
		&ast.Sum{Head: bot, Var: "x", Over: &ast.Gen{N: nat(2)}},
		bigU(bot, "x", &ast.Gen{N: nat(1)}),
		&ast.MkArray{Dims: []ast.Expr{nat(1)}, Elems: []ast.Expr{bot}},
		app(lam("x", v("x")), bot),
		&ast.SingletonBag{Elem: bot},
	}
	for _, e := range cases {
		if got := run(t, e, nil); !got.IsBottom() {
			t.Errorf("Eval(%s) = %s, want bottom", e, got)
		}
	}
}

func TestIfDoesNotEvaluateUntakenBranch(t *testing.T) {
	// if 0 < 1 then 42 else ⊥ — the β^p residual pattern — must not be ⊥.
	e := &ast.If{Cond: cmp(ast.OpLt, nat(0), nat(1)), Then: nat(42), Else: &ast.Bottom{}}
	expect(t, e, nil, object.Nat(42))
}

func TestDivisionByZero(t *testing.T) {
	if got := run(t, arith(ast.OpDiv, nat(1), nat(0)), nil); !got.IsBottom() {
		t.Errorf("1/0 = %s, want bottom", got)
	}
	if got := run(t, arith(ast.OpMod, nat(1), nat(0)), nil); !got.IsBottom() {
		t.Errorf("1%%0 = %s, want bottom", got)
	}
}

func TestRealArithmetic(t *testing.T) {
	r := func(f float64) ast.Expr { return &ast.RealLit{Val: f} }
	expect(t, arith(ast.OpAdd, r(1.5), r(2.25)), nil, object.Real(3.75))
	// Mixed nat/real promotes.
	expect(t, arith(ast.OpMul, nat(2), r(2.5)), nil, object.Real(5))
	// Real subtraction is not monus.
	expect(t, arith(ast.OpSub, r(1), r(2.5)), nil, object.Real(-1.5))
	if got := run(t, arith(ast.OpDiv, r(1), r(0)), nil); !got.IsBottom() {
		t.Errorf("1.0/0.0 = %s, want bottom", got)
	}
}

func TestMkArray(t *testing.T) {
	e := &ast.MkArray{Dims: []ast.Expr{nat(2), nat(2)}, Elems: []ast.Expr{nat(1), nat(2), nat(3), nat(4)}}
	want := object.MustArray([]int{2, 2}, []object.Value{object.Nat(1), object.Nat(2), object.Nat(3), object.Nat(4)})
	expect(t, e, nil, want)
	// Mismatched count is undefined (⊥), per section 3.
	bad := &ast.MkArray{Dims: []ast.Expr{nat(3)}, Elems: []ast.Expr{nat(1)}}
	if got := run(t, bad, nil); !got.IsBottom() {
		t.Errorf("mismatched literal = %s, want bottom", got)
	}
}

func TestUnboundVariable(t *testing.T) {
	ev := New(nil)
	_, err := ev.Eval(v("nope"), nil)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("unbound variable error = %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	ev := New(nil)
	ev.MaxSteps = 10
	// A tabulation of 1000 elements exceeds 10 steps.
	_, err := ev.Eval(tab(v("i"), []string{"i"}, nat(1000)), nil)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("step budget error = %v", err)
	}
}

// --- Bags and ranking (section 6) -------------------------------------------

func TestBags(t *testing.T) {
	expect(t, &ast.EmptyBag{}, nil, object.EmptyBag)
	expect(t, &ast.SingletonBag{Elem: nat(1)}, nil, object.Bag(object.Nat(1)))
	e := &ast.BagUnion{L: &ast.SingletonBag{Elem: nat(1)}, R: &ast.SingletonBag{Elem: nat(1)}}
	expect(t, e, nil, object.Bag(object.Nat(1), object.Nat(1)))
	// ⊎{| {|x|} | x ∈ {|1,1,2|} |} preserves multiplicity.
	B := object.Bag(object.Nat(1), object.Nat(1), object.Nat(2))
	e2 := &ast.BigBagUnion{Head: &ast.SingletonBag{Elem: v("x")}, Var: "x", Over: v("B")}
	expect(t, e2, map[string]object.Value{"B": B}, B)
}

func TestRankUnion(t *testing.T) {
	// rank(X) = ⋃_r{ {(x, i)} | x_i ∈ X } (section 6).
	X := object.Set(object.Nat(30), object.Nat(10), object.Nat(20))
	e := &ast.RankUnion{
		Head:    sing(&ast.Tuple{Elems: []ast.Expr{v("x"), v("i")}}),
		Var:     "x",
		RankVar: "i",
		Over:    v("X"),
	}
	want := object.Set(
		object.Tuple(object.Nat(10), object.Nat(1)),
		object.Tuple(object.Nat(20), object.Nat(2)),
		object.Tuple(object.Nat(30), object.Nat(3)))
	expect(t, e, map[string]object.Value{"X": X}, want)
}

func TestRankBagUnion(t *testing.T) {
	// Equal values get consecutive ranks.
	B := object.Bag(object.Nat(5), object.Nat(5), object.Nat(7))
	e := &ast.RankBagUnion{
		Head:    &ast.SingletonBag{Elem: &ast.Tuple{Elems: []ast.Expr{v("x"), v("i")}}},
		Var:     "x",
		RankVar: "i",
		Over:    v("B"),
	}
	want := object.Bag(
		object.Tuple(object.Nat(5), object.Nat(1)),
		object.Tuple(object.Nat(5), object.Nat(2)),
		object.Tuple(object.Nat(7), object.Nat(3)))
	expect(t, e, map[string]object.Value{"B": B}, want)
}

// --- The nest example from sections 2 and 3 ---------------------------------

func TestNest(t *testing.T) {
	// nest : {s × t} → {s × {t}} groups second components by first.
	// nest = λX. ⋃{ {(π1 x, Π2(filter(λy.π1 y = π1 x)(X)))} | x ∈ X }
	p1 := func(e ast.Expr) ast.Expr { return &ast.Proj{I: 1, K: 2, Tuple: e} }
	p2 := func(e ast.Expr) ast.Expr { return &ast.Proj{I: 2, K: 2, Tuple: e} }
	inner := bigU(
		&ast.If{
			Cond: cmp(ast.OpEq, p1(v("y")), p1(v("x"))),
			Then: sing(p2(v("y"))),
			Else: &ast.EmptySet{},
		}, "y", v("X"))
	e := bigU(sing(&ast.Tuple{Elems: []ast.Expr{p1(v("x")), inner}}), "x", v("X"))
	X := object.Set(
		object.Tuple(object.Nat(1), object.String_("a")),
		object.Tuple(object.Nat(1), object.String_("b")),
		object.Tuple(object.Nat(2), object.String_("c")),
	)
	want := object.Set(
		object.Tuple(object.Nat(1), object.Set(object.String_("a"), object.String_("b"))),
		object.Tuple(object.Nat(2), object.Set(object.String_("c"))),
	)
	expect(t, e, map[string]object.Value{"X": X}, want)
}

// --- hist and hist' from section 2 -------------------------------------------

// histSlow e = [[ Σ{ if e[j] = i then 1 else 0 | j ∈ dom(e) } | i < max(rng(e))+1 ]]
func histSlow(arr ast.Expr) ast.Expr {
	rng := bigU(sing(sub(arr, v("j"))), "j", &ast.Gen{N: dim(1, arr)})
	body := &ast.Sum{
		Head: &ast.If{Cond: cmp(ast.OpEq, sub(arr, v("j")), v("i")), Then: nat(1), Else: nat(0)},
		Var:  "j",
		Over: &ast.Gen{N: dim(1, arr)},
	}
	return tab(body, []string{"i"}, arith(ast.OpAdd, app(v("max"), rng), nat(1)))
}

// histFast e = map(count)(index(⋃{ {(e[j], j)} | j ∈ dom(e) })).
// The index result is bound through a lambda so it is computed once; the
// paper's composition map(count) ∘ index has the same sharing.
func histFast(arr ast.Expr) ast.Expr {
	pairs := bigU(sing(&ast.Tuple{Elems: []ast.Expr{sub(arr, v("j")), v("j")}}),
		"j", &ast.Gen{N: dim(1, arr)})
	idx := &ast.Index{K: 1, Set: pairs}
	return app(lam("h", mapArr(v("count"), v("h"))), idx)
}

func TestHistBothVersionsAgree(t *testing.T) {
	A := object.NatVector(2, 0, 2, 3, 2)
	want := object.NatVector(1, 0, 3, 1)
	got1 := run(t, histSlow(v("A")), map[string]object.Value{"A": A})
	got2 := run(t, histFast(v("A")), map[string]object.Value{"A": A})
	if !object.Equal(got1, want) {
		t.Errorf("hist = %s, want %s", got1, want)
	}
	if !object.Equal(got2, want) {
		t.Errorf("hist' = %s, want %s", got2, want)
	}
}

func TestHistComplexityClaim(t *testing.T) {
	// hist' should take far fewer evaluator steps than hist when the value
	// range m is large (E7's claim, in steps instead of seconds).
	n, m := 50, 500
	data := make([]object.Value, n)
	for i := range data {
		data[i] = object.Nat(int64((i * 7919) % m))
	}
	data[0] = object.Nat(int64(m - 1)) // pin the max so both versions see range m
	A := object.Vector(data...)

	evSlow := New(Builtins())
	if _, err := evSlow.Eval(histSlow(v("A")), (*Env)(nil).Bind("A", A)); err != nil {
		t.Fatal(err)
	}
	evFast := New(Builtins())
	if _, err := evFast.Eval(histFast(v("A")), (*Env)(nil).Bind("A", A)); err != nil {
		t.Fatal(err)
	}
	if evFast.Steps.Load()*4 > evSlow.Steps.Load() {
		t.Errorf("hist' (%d steps) is not substantially cheaper than hist (%d steps)", evFast.Steps.Load(), evSlow.Steps.Load())
	}
}

// TestKindErrors feeds ill-kinded values (possible only through misuse of
// the Go API, never from typechecked queries) and checks the evaluator
// reports errors instead of panicking.
func TestKindErrors(t *testing.T) {
	S := object.Set(object.Nat(1))
	A := object.NatVector(1, 2)
	cases := []struct {
		name string
		e    ast.Expr
		env  map[string]object.Value
	}{
		{"apply non-function", app(v("S"), nat(1)), map[string]object.Value{"S": S}},
		{"proj non-tuple", &ast.Proj{I: 1, K: 2, Tuple: nat(1)}, nil},
		{"union non-set", &ast.Union{L: v("A"), R: v("A")}, map[string]object.Value{"A": A}},
		{"bigunion over nat", bigU(sing(v("x")), "x", nat(3)), nil},
		{"bigunion body non-set", bigU(v("x"), "x", v("S")), map[string]object.Value{"S": S}},
		{"get non-set", &ast.Get{Set: nat(1)}, nil},
		{"if non-bool", &ast.If{Cond: nat(1), Then: nat(1), Else: nat(1)}, nil},
		{"gen non-nat", &ast.Gen{N: v("S")}, map[string]object.Value{"S": S}},
		{"sum over non-set", &ast.Sum{Head: nat(1), Var: "x", Over: nat(3)}, nil},
		{"sum of non-numeric", &ast.Sum{Head: &ast.BoolLit{Val: true}, Var: "x", Over: v("S")},
			map[string]object.Value{"S": S}},
		{"tab bound non-nat", tab(nat(1), []string{"i"}, v("S")), map[string]object.Value{"S": S}},
		{"subscript non-array", sub(nat(1), nat(0)), nil},
		{"dim non-array", dim(1, nat(1)), nil},
		{"index non-set", &ast.Index{K: 1, Set: nat(1)}, nil},
		{"index non-pairs", &ast.Index{K: 1, Set: v("S")}, map[string]object.Value{"S": S}},
		{"mkarray dim non-nat", &ast.MkArray{Dims: []ast.Expr{v("S")}, Elems: nil},
			map[string]object.Value{"S": S}},
		{"bag union over set", &ast.BigBagUnion{Head: &ast.SingletonBag{Elem: v("x")}, Var: "x", Over: v("S")},
			map[string]object.Value{"S": S}},
		{"rank over bag", &ast.RankUnion{Head: sing(v("x")), Var: "x", RankVar: "i", Over: &ast.EmptyBag{}}, nil},
		{"cmp function", cmp(ast.OpEq, v("min"), v("min")), nil},
		{"arith on strings", arith(ast.OpAdd, &ast.StringLit{Val: "a"}, &ast.StringLit{Val: "b"}), nil},
	}
	for _, tc := range cases {
		g := Builtins()
		for k, val := range tc.env {
			g[k] = val
		}
		if _, err := New(g).Eval(tc.e, nil); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestRealModAndComparisons covers the real-arithmetic remainder and the
// promotion rules.
func TestRealModAndComparisons(t *testing.T) {
	r := func(f float64) ast.Expr { return &ast.RealLit{Val: f} }
	got := run(t, arith(ast.OpMod, r(7.5), r(2)), nil)
	if got.Kind != object.KReal || got.R != 1.5 {
		t.Errorf("7.5 %% 2.0 = %s", got)
	}
	if got := run(t, arith(ast.OpMod, r(1), r(0)), nil); !got.IsBottom() {
		t.Errorf("mod by zero = %s", got)
	}
	if got := run(t, cmp(ast.OpLe, nat(2), r(2.0)), nil); !object.Equal(got, object.True) {
		t.Errorf("2 <= 2.0 = %s", got)
	}
}
