package eval

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
)

// sumOverGen builds sum{ i | i ∈ gen(n) }, a query that burns ~n steps.
func sumOverGen(n int64) ast.Expr {
	return &ast.Sum{
		Head: &ast.Var{Name: "i"},
		Var:  "i",
		Over: &ast.Gen{N: &ast.NatLit{Val: n}},
	}
}

// slowTabulate builds [[ sum{j | j ∈ gen(inner)} | i < outer ]]: many steps
// per cell, so interrupts land mid-tabulation while the result stays small.
func slowTabulate(outer, inner int64) ast.Expr {
	return &ast.ArrayTab{
		Head: &ast.Sum{
			Head: &ast.Var{Name: "j"},
			Var:  "j",
			Over: &ast.Gen{N: &ast.NatLit{Val: inner}},
		},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{&ast.NatLit{Val: outer}},
	}
}

func wantResourceError(t *testing.T, err error, kind ResourceKind) *ResourceError {
	t.Helper()
	if err == nil {
		t.Fatalf("expected a %s ResourceError, got nil", kind)
	}
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("expected *ResourceError, got %T: %v", err, err)
	}
	if re.Kind != kind {
		t.Fatalf("ResourceError kind = %s, want %s (err: %v)", re.Kind, kind, re)
	}
	return re
}

func TestStepBudgetReturnsTypedError(t *testing.T) {
	ev := New(nil)
	ev.MaxSteps = 100
	_, err := ev.Eval(sumOverGen(100_000), nil)
	re := wantResourceError(t, err, ResourceSteps)
	if re.Limit != 100 {
		t.Errorf("Limit = %d, want 100", re.Limit)
	}
	if ev.Steps.Load() <= 100 {
		t.Errorf("Steps = %d, want > 100 (consumption reported on abort)", ev.Steps.Load())
	}
}

func TestLimitsMaxStepsAlsoEnforced(t *testing.T) {
	ev := New(nil)
	ev.Limits.MaxSteps = 100
	_, err := ev.Eval(sumOverGen(100_000), nil)
	wantResourceError(t, err, ResourceSteps)
}

func TestMaxCellsFailsFastOnHugeTabulate(t *testing.T) {
	// A 10^9-cell tabulation must fail on the cell budget before the result
	// array is allocated; completing quickly is the whole point.
	ev := New(nil)
	ev.Limits.MaxCells = 1_000_000
	start := time.Now()
	_, err := ev.Eval(&ast.ArrayTab{
		Head:   &ast.Var{Name: "i"},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{&ast.NatLit{Val: 1_000_000_000}},
	}, nil)
	wantResourceError(t, err, ResourceCells)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cell-budget abort took %s; want fail-fast", elapsed)
	}
}

func TestMaxCellsOverflowingShapeSaturates(t *testing.T) {
	// Bounds whose product overflows int64 must still trip the budget, not
	// wrap around to something small.
	ev := New(nil)
	ev.Limits.MaxCells = 1000
	_, err := ev.Eval(&ast.ArrayTab{
		Head: &ast.Var{Name: "i"},
		Idx:  []string{"i", "j", "k"},
		Bounds: []ast.Expr{
			&ast.NatLit{Val: 1 << 40},
			&ast.NatLit{Val: 1 << 40},
			&ast.NatLit{Val: 1 << 40},
		},
	}, nil)
	wantResourceError(t, err, ResourceCells)
}

func TestMaxCellsOnGen(t *testing.T) {
	ev := New(nil)
	ev.Limits.MaxCells = 100
	_, err := ev.Eval(&ast.Gen{N: &ast.NatLit{Val: 1_000_000_000}}, nil)
	wantResourceError(t, err, ResourceCells)
}

func TestMaxCellsOnIndex(t *testing.T) {
	// index_1 over {(10^9 - 1, 0)} demands a billion-cell array; the guard
	// must veto it before allocation.
	ev := New(nil)
	ev.Limits.MaxCells = 1000
	pair := &ast.Tuple{Elems: []ast.Expr{
		&ast.NatLit{Val: 999_999_999},
		&ast.NatLit{Val: 0},
	}}
	_, err := ev.Eval(&ast.Index{K: 1, Set: &ast.Singleton{Elem: pair}}, nil)
	wantResourceError(t, err, ResourceCells)
}

func TestTimeoutMidTabulate(t *testing.T) {
	ev := New(nil)
	ev.Limits.Timeout = 30 * time.Millisecond
	start := time.Now()
	// ~10^8 steps of work; far more than 30ms worth.
	_, err := ev.EvalCtx(context.Background(), slowTabulate(100_000, 1000), nil)
	re := wantResourceError(t, err, ResourceTimeout)
	if !errors.Is(re, context.DeadlineExceeded) {
		t.Errorf("timeout error should unwrap to context.DeadlineExceeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout abort took %s; want roughly the 30ms deadline", elapsed)
	}
}

func TestContextDeadlineMidTabulate(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ev := New(nil)
	_, err := ev.EvalCtx(ctx, slowTabulate(100_000, 1000), nil)
	re := wantResourceError(t, err, ResourceTimeout)
	if !errors.Is(re, context.DeadlineExceeded) {
		t.Errorf("deadline error should unwrap to context.DeadlineExceeded")
	}
}

func TestCancellationFromAnotherGoroutine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	ev := New(nil)
	start := time.Now()
	_, err := ev.EvalCtx(ctx, slowTabulate(100_000, 1000), nil)
	re := wantResourceError(t, err, ResourceCancelled)
	if !errors.Is(re, context.Canceled) {
		t.Errorf("cancellation error should unwrap to context.Canceled")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s to observe", elapsed)
	}
}

func TestMaxDepth(t *testing.T) {
	// Left-nest additions 1000 deep; recursion depth tracks nesting.
	var e ast.Expr = &ast.NatLit{Val: 0}
	for i := 0; i < 1000; i++ {
		e = &ast.Arith{Op: ast.OpAdd, L: e, R: &ast.NatLit{Val: 1}}
	}
	ev := New(nil)
	ev.Limits.MaxDepth = 50
	_, err := ev.Eval(e, nil)
	wantResourceError(t, err, ResourceDepth)

	// The same expression fits under a deep-enough budget.
	ev2 := New(nil)
	ev2.Limits.MaxDepth = 5000
	v, err := ev2.Eval(e, nil)
	if err != nil {
		t.Fatalf("deep budget: %v", err)
	}
	if v.N != 1000 {
		t.Errorf("value = %d, want 1000", v.N)
	}
}

func TestStaleContextClearedAfterEvalCtx(t *testing.T) {
	// A closure escaping an EvalCtx call captures the evaluator; once that
	// evaluation ends, its (possibly cancelled) context must not leak into
	// later calls through the closure.
	ctx, cancel := context.WithCancel(context.Background())
	ev := New(nil)
	lam := &ast.Lam{Param: "x", Body: &ast.Var{Name: "x"}}
	fn, err := ev.EvalCtx(ctx, lam, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	v, err := fn.Fn(object.Nat(7))
	if err != nil {
		t.Fatalf("closure after ctx cancelled: %v", err)
	}
	if v.N != 7 {
		t.Errorf("closure result = %v", v)
	}
}
