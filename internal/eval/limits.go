package eval

import (
	"fmt"
	"time"
)

// Limits bounds the resources a single query evaluation may consume. The
// zero value imposes no limits. Budgets exist because AQL's tabulate and
// index iteration make naive evaluation capable of materializing enormous
// intermediate arrays (the very problem the optimizer of section 5
// attacks); a server must fail such queries fast and cheaply rather than
// exhaust memory or wall-clock on them.
type Limits struct {
	// MaxSteps bounds evaluated core-calculus nodes; a machine-independent
	// CPU budget.
	MaxSteps int64
	// MaxCells bounds the total cells allocated by set/bag/array
	// constructors, tabulation, gen and index. A tabulation's cell count
	// is charged before its result array is allocated, so a
	// [| ... | i < 10^9 |] query fails fast instead of OOMing.
	MaxCells int64
	// MaxDepth bounds evaluator recursion depth, guarding against
	// stack exhaustion from pathologically nested expressions.
	MaxDepth int
	// Timeout bounds wall-clock time per evaluation, measured from
	// EvalCtx. Checked amortized (every interruptInterval steps) so the
	// per-node hot path stays branch-cheap.
	Timeout time.Duration
}

// ResourceKind names the budget a query exhausted.
type ResourceKind string

// The kinds of resource exhaustion.
const (
	ResourceSteps     ResourceKind = "steps"
	ResourceCells     ResourceKind = "cells"
	ResourceDepth     ResourceKind = "depth"
	ResourceTimeout   ResourceKind = "timeout"
	ResourceCancelled ResourceKind = "cancelled"
)

// ResourceError reports that evaluation was aborted because a resource
// budget was exhausted, the deadline passed, or the context was cancelled.
// It is a structured error so servers can distinguish "your query is too
// expensive" from genuine evaluation failures; unwrap with errors.As.
type ResourceError struct {
	Kind  ResourceKind
	Limit int64 // the budget (steps/cells/depth; Timeout in nanoseconds)
	Used  int64 // consumption observed when the budget tripped
	Cause error // ctx.Err() for timeout/cancelled, nil otherwise
}

// Error renders a per-kind diagnostic.
func (e *ResourceError) Error() string {
	switch e.Kind {
	case ResourceSteps:
		return fmt.Sprintf("eval: step budget %d exhausted", e.Limit)
	case ResourceCells:
		return fmt.Sprintf("eval: cell budget %d exhausted (%d cells requested)", e.Limit, e.Used)
	case ResourceDepth:
		return fmt.Sprintf("eval: depth budget %d exhausted", e.Limit)
	case ResourceTimeout:
		if e.Limit > 0 {
			return fmt.Sprintf("eval: query timed out after %s", time.Duration(e.Limit))
		}
		return "eval: query timed out"
	case ResourceCancelled:
		return "eval: query cancelled"
	}
	return fmt.Sprintf("eval: resource budget exceeded (%s)", e.Kind)
}

// Unwrap exposes the context error so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work through a
// ResourceError.
func (e *ResourceError) Unwrap() error { return e.Cause }
