package eval

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
)

// Operator-level profiling: both engines attribute wall time, work counters
// and invocation counts to individual core-AST operators, producing a span
// tree per evaluation. The machinery here is engine-neutral — the span plan
// is built from the AST by a traversal both engines share, so the two
// engines produce structurally identical trees (same operators, same
// invocation counts) and only the timings differ.
//
// The cost model follows the profiling level:
//
//   - ProfOff: no plan is built and no closure is wrapped; the engines'
//     hot paths are byte-identical to unprofiled execution.
//   - ProfSampled: only the coarse operators (tabulations, subscripts, big
//     unions, conditionals, applications, ...) carry spans, and only one in
//     SampleInterval invocations of a span is fully measured; the rest pay
//     one atomic increment. Reported times and counters are scaled
//     estimates.
//   - ProfFull: every AST node carries a span and every invocation is
//     measured. Counter attribution is exact: the per-span self counters
//     sum to the engine's flat counters.

// ProfLevel selects how much operator-level profiling an engine performs.
type ProfLevel int

const (
	// ProfOff disables span profiling entirely (the default).
	ProfOff ProfLevel = iota
	// ProfSampled profiles coarse operators, measuring one in
	// SampleInterval invocations.
	ProfSampled
	// ProfFull profiles every operator on every invocation.
	ProfFull
)

// SampleInterval is the sampling period of ProfSampled: invocation 1,
// 1+SampleInterval, 1+2·SampleInterval, ... of each span are measured.
// Must be a power of two (the sampling test is a mask).
const SampleInterval = 64

// sampleMask routes one in SampleInterval invocations to the measured path.
const sampleMask = SampleInterval - 1

// String renders the level as its flag/command spelling.
func (l ProfLevel) String() string {
	switch l {
	case ProfOff:
		return "off"
	case ProfSampled:
		return "sampled"
	case ProfFull:
		return "full"
	}
	return fmt.Sprintf("ProfLevel(%d)", int(l))
}

// ParseProfLevel parses "off", "sampled" or "full".
func ParseProfLevel(s string) (ProfLevel, error) {
	switch s {
	case "off":
		return ProfOff, nil
	case "sampled":
		return ProfSampled, nil
	case "full":
		return ProfFull, nil
	}
	return ProfOff, fmt.Errorf("eval: unknown profiling level %q (have off, sampled, full)", s)
}

// SpanProfiler is the optional engine capability of producing span trees;
// both engines implement it. The session type-asserts rather than widening
// the Engine interface so alternative engines without profiling remain
// conformant.
type SpanProfiler interface {
	// SetProfiling selects the profiling level for subsequent EvalExpr
	// calls.
	SetProfiling(ProfLevel)
	// Profiling reports the current level.
	Profiling() ProfLevel
	// SpanTree returns the span tree of the most recent EvalExpr, or nil
	// when profiling was off.
	SpanTree() *SpanNode
}

// WorkerSpan records one parallel-tabulation worker: its contiguous
// row-major element range, how long its loop ran, and the steps it charged
// — the per-worker skew view of a fanned-out tabulation.
type WorkerSpan struct {
	Worker int
	Start  int // first row-major offset (inclusive)
	End    int // last row-major offset (exclusive)
	Busy   time.Duration
	Steps  int64
}

// SpanNode is one profiled operator in a span tree. Children follow the
// static AST structure (a lambda body is a child of its Lam even though it
// executes under an App). Times and counters are exact at ProfFull; at
// ProfSampled they are estimates scaled from the measured sample, and
// WallSelf is clamped at zero (parallel tabulation children accumulate
// CPU-style busy time that can exceed the parent's elapsed time).
type SpanNode struct {
	Op       string
	Children []*SpanNode

	// Invocations counts executions of the operator; Measured counts the
	// ones that were fully timed (equal at ProfFull).
	Invocations int64
	Measured    int64

	// WallCum is the operator's cumulative wall time including descendants;
	// WallSelf excludes time measured in profiled descendants.
	WallCum  time.Duration
	WallSelf time.Duration

	// Self work counters: charges made while this span was the innermost
	// open span. Summed over the tree they equal the engine's flat
	// counters (exactly at ProfFull).
	Steps  int64
	Cells  int64
	Tabs   int64
	SetOps int64
	Iters  int64

	// Workers records parallel-tabulation executions under this operator
	// (ArrayTab spans only); WorkersDropped counts records beyond the cap.
	Workers        []WorkerSpan
	WorkersDropped int
}

// Walk calls fn for the node and every descendant, depth-first.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CumCounters sums the self counters of the node and its descendants.
func (n *SpanNode) CumCounters() Counters {
	var c Counters
	n.Walk(func(s *SpanNode) {
		c.Steps += s.Steps
		c.Cells += s.Cells
		c.Tabs += s.Tabs
		c.SetOps += s.SetOps
		c.Iters += s.Iters
	})
	return c
}

// spanWorthy reports whether the operator gets its own span at the level:
// everything at ProfFull; at ProfSampled the coarse operators whose cost
// dominates real queries — tabulation, subscripting, the comprehension and
// set-algebra loops, conditionals and application. Leaf nodes (variables,
// literals, arithmetic, tuples) are folded into their nearest profiled
// ancestor's self time.
func spanWorthy(e ast.Expr, level ProfLevel) bool {
	if level == ProfFull {
		return true
	}
	switch e.(type) {
	case *ast.ArrayTab, *ast.Subscript, *ast.MkArray, *ast.Dim,
		*ast.BigUnion, *ast.BigBagUnion, *ast.RankUnion, *ast.RankBagUnion,
		*ast.Sum, *ast.Gen, *ast.Index, *ast.If, *ast.App,
		*ast.Union, *ast.BagUnion, *ast.Get:
		return true
	}
	return false
}

// SpanPlan maps AST nodes to span identities for one evaluation. Both
// engines build their plan with NewSpanPlan over the same core expression,
// which is what guarantees structurally identical trees.
type SpanPlan struct {
	Level ProfLevel
	Root  *SpanNode
	Nodes []*SpanNode // by span id

	ids map[ast.Expr]int

	// maxWorkerSpans caps the per-span worker records (a tabulation inside
	// a loop executes many times).
	mu sync.Mutex // guards Workers/WorkersDropped appends
}

// maxWorkerSpans bounds the worker records kept per ArrayTab span.
const maxWorkerSpans = 64

// NewSpanPlan builds the span plan for e at the given level. Shared
// subtrees (the optimizer may alias nodes) are planned once, at their first
// visit; both engines consult the same map, so attribution stays
// consistent. Returns nil at ProfOff.
func NewSpanPlan(e ast.Expr, level ProfLevel) *SpanPlan {
	if level == ProfOff || e == nil {
		return nil
	}
	p := &SpanPlan{Level: level, ids: make(map[ast.Expr]int)}
	p.walk(e, nil, true)
	p.Root = p.Nodes[0]
	return p
}

func (p *SpanPlan) walk(e ast.Expr, parent *SpanNode, root bool) {
	if e == nil {
		return
	}
	if _, seen := p.ids[e]; seen {
		return // shared subtree: attributed at its first occurrence
	}
	if root || spanWorthy(e, p.Level) {
		sp := &SpanNode{Op: ast.NodeName(e)}
		p.ids[e] = len(p.Nodes)
		p.Nodes = append(p.Nodes, sp)
		if parent != nil {
			parent.Children = append(parent.Children, sp)
		}
		parent = sp
	}
	for _, kid := range e.Children() {
		p.walk(kid, parent, false)
	}
}

// ID resolves an AST node to its span id.
func (p *SpanPlan) ID(e ast.Expr) (int, bool) {
	if p == nil {
		return 0, false
	}
	id, ok := p.ids[e]
	return id, ok
}

// SpanSlot accumulates one span's measurements. All fields are atomic:
// closures that escape into the compiled engine's parallel tabulation
// workers can execute a span concurrently (the same reason the engines'
// work counters are atomic), and atomicity keeps that race-free. The
// Child* exchange underlying self attribution is heuristically ordered in
// that case — concurrent interleavings can skew self times, never
// invocation counts or cumulative counters.
type SpanSlot struct {
	Inv      atomic.Int64
	Measured atomic.Int64
	WallNs   atomic.Int64
	SelfNs   atomic.Int64
	Steps    atomic.Int64
	Cells    atomic.Int64
	Tabs     atomic.Int64
	SetOps   atomic.Int64
	Iters    atomic.Int64
}

// ProfCtx is one goroutine-lineage's accumulation state: the root machine
// owns one, and each parallel tabulation worker forks its own so the hot
// path stays uncontended; worker contexts merge back at join. The Child*
// fields implement self attribution: a measured span invocation zeroes
// them, runs, subtracts what profiled descendants accumulated, and restores
// the parent's view plus its own contribution.
type ProfCtx struct {
	Plan  *SpanPlan
	Full  bool
	Slots []SpanSlot

	ChildWallNs atomic.Int64
	ChildSteps  atomic.Int64
	ChildCells  atomic.Int64
	ChildTabs   atomic.Int64
	ChildSetOps atomic.Int64
	ChildIters  atomic.Int64
}

// NewProfCtx returns the root accumulation context for a plan (nil plan
// gives nil context).
func NewProfCtx(plan *SpanPlan) *ProfCtx {
	if plan == nil {
		return nil
	}
	return &ProfCtx{Plan: plan, Full: plan.Level == ProfFull, Slots: make([]SpanSlot, len(plan.Nodes))}
}

// Fork returns a fresh context over the same plan for a parallel worker.
func (p *ProfCtx) Fork() *ProfCtx {
	if p == nil {
		return nil
	}
	return &ProfCtx{Plan: p.Plan, Full: p.Full, Slots: make([]SpanSlot, len(p.Plan.Nodes))}
}

// MergeWorker folds a worker context into p at join: per-span measurements
// add slot-wise, and the worker's top-level attributed totals (its residual
// Child* accumulators) feed p's open invocation so the enclosing span's
// self excludes work already attributed inside the worker.
func (p *ProfCtx) MergeWorker(w *ProfCtx) {
	if p == nil || w == nil {
		return
	}
	for i := range w.Slots {
		ws, ps := &w.Slots[i], &p.Slots[i]
		ps.Inv.Add(ws.Inv.Load())
		ps.Measured.Add(ws.Measured.Load())
		ps.WallNs.Add(ws.WallNs.Load())
		ps.SelfNs.Add(ws.SelfNs.Load())
		ps.Steps.Add(ws.Steps.Load())
		ps.Cells.Add(ws.Cells.Load())
		ps.Tabs.Add(ws.Tabs.Load())
		ps.SetOps.Add(ws.SetOps.Load())
		ps.Iters.Add(ws.Iters.Load())
	}
	p.ChildWallNs.Add(w.ChildWallNs.Load())
	p.ChildSteps.Add(w.ChildSteps.Load())
	p.ChildCells.Add(w.ChildCells.Load())
	p.ChildTabs.Add(w.ChildTabs.Load())
	p.ChildSetOps.Add(w.ChildSetOps.Load())
	p.ChildIters.Add(w.ChildIters.Load())
}

// RecordWorkers appends parallel-worker records to the span, keeping at
// most maxWorkerSpans per span and counting the rest.
func (p *ProfCtx) RecordWorkers(id int, ws []WorkerSpan) {
	if p == nil || id < 0 || id >= len(p.Plan.Nodes) {
		return
	}
	p.Plan.mu.Lock()
	sp := p.Plan.Nodes[id]
	for i, w := range ws {
		if len(sp.Workers) >= maxWorkerSpans {
			sp.WorkersDropped += len(ws) - i
			break
		}
		sp.Workers = append(sp.Workers, w)
	}
	p.Plan.mu.Unlock()
}

// Fold writes the accumulated slots into the plan's nodes and returns the
// root. At ProfSampled the wall times and counters are scaled from the
// measured sample to estimate the full population; WallSelf is clamped at
// zero.
func (p *ProfCtx) Fold() *SpanNode {
	if p == nil {
		return nil
	}
	for i, sp := range p.Plan.Nodes {
		s := &p.Slots[i]
		inv, measured := s.Inv.Load(), s.Measured.Load()
		sp.Invocations = inv
		sp.Measured = measured
		scale := 1.0
		if measured > 0 && inv > measured {
			scale = float64(inv) / float64(measured)
		}
		est := func(v int64) int64 {
			if v <= 0 || scale == 1.0 {
				return max64(v, 0)
			}
			return int64(float64(v) * scale)
		}
		sp.WallCum = time.Duration(est(s.WallNs.Load()))
		sp.WallSelf = time.Duration(est(s.SelfNs.Load()))
		sp.Steps = est(s.Steps.Load())
		sp.Cells = est(s.Cells.Load())
		sp.Tabs = est(s.Tabs.Load())
		sp.SetOps = est(s.SetOps.Load())
		sp.Iters = est(s.Iters.Load())
	}
	return p.Plan.Root
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SetProfiling selects the span-profiling level for subsequent EvalExpr
// calls; part of SpanProfiler.
func (ev *Evaluator) SetProfiling(l ProfLevel) { ev.profLevel = l }

// Profiling reports the interpreter's profiling level; part of SpanProfiler.
func (ev *Evaluator) Profiling() ProfLevel { return ev.profLevel }

// SpanTree returns the span tree of the most recent EvalExpr, or nil when
// profiling was off; part of SpanProfiler.
func (ev *Evaluator) SpanTree() *SpanNode { return ev.lastSpans }

// evalSpan is the interpreter's span wrapper: count the invocation, and on
// measured invocations (all of them at ProfFull, one in SampleInterval at
// ProfSampled) snapshot the work counters and exchange the Child*
// accumulators around the evaluation so self time and self counters exclude
// profiled descendants.
func (ev *Evaluator) evalSpan(p *ProfCtx, id int, e ast.Expr, env *Env) (object.Value, error) {
	s := &p.Slots[id]
	inv := s.Inv.Add(1)
	if !p.Full && (inv-1)&sampleMask != 0 {
		return ev.evalDepth(e, env)
	}
	steps0 := ev.Steps.Load()
	cells0 := ev.Cells.Load()
	tabs0 := ev.Tabs.Load()
	setOps0 := ev.SetOps.Load()
	iters0 := ev.Iters.Load()
	savedWall := p.ChildWallNs.Swap(0)
	savedSteps := p.ChildSteps.Swap(0)
	savedCells := p.ChildCells.Swap(0)
	savedTabs := p.ChildTabs.Swap(0)
	savedSetOps := p.ChildSetOps.Swap(0)
	savedIters := p.ChildIters.Swap(0)
	t0 := time.Now()
	v, err := ev.evalDepth(e, env)
	d := int64(time.Since(t0))
	dSteps := ev.Steps.Load() - steps0
	dCells := ev.Cells.Load() - cells0
	dTabs := ev.Tabs.Load() - tabs0
	dSetOps := ev.SetOps.Load() - setOps0
	dIters := ev.Iters.Load() - iters0
	s.Measured.Add(1)
	s.WallNs.Add(d)
	s.SelfNs.Add(d - p.ChildWallNs.Load())
	s.Steps.Add(dSteps - p.ChildSteps.Load())
	s.Cells.Add(dCells - p.ChildCells.Load())
	s.Tabs.Add(dTabs - p.ChildTabs.Load())
	s.SetOps.Add(dSetOps - p.ChildSetOps.Load())
	s.Iters.Add(dIters - p.ChildIters.Load())
	p.ChildWallNs.Store(savedWall + d)
	p.ChildSteps.Store(savedSteps + dSteps)
	p.ChildCells.Store(savedCells + dCells)
	p.ChildTabs.Store(savedTabs + dTabs)
	p.ChildSetOps.Store(savedSetOps + dSetOps)
	p.ChildIters.Store(savedIters + dIters)
	return v, err
}
