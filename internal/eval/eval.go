// Package eval implements the operational semantics of NRCA (figure 1 of
// the paper) over the complex-object library.
//
// Evaluation is strict: the error value ⊥ propagates through every construct
// except the untaken branch of a conditional. That exception is essential —
// the optimizer's β^p rule rewrites subscripts into
// "if e3 < e2 then ... else ⊥", which must not error when the bound check
// succeeds (section 5).
//
// The evaluator is openly extensible: registered external primitives and
// top-level vals are looked up in the Globals map, exactly as the paper's
// RegisterCO makes SML functions available to AQL queries (section 4.1).
package eval

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
)

// Env is a persistent environment binding variables to values. The zero
// value (nil) is the empty environment.
type Env struct {
	name string
	val  object.Value
	next *Env
}

// Bind returns the environment extended with name = val.
func (e *Env) Bind(name string, val object.Value) *Env {
	return &Env{name: name, val: val, next: e}
}

// Lookup returns the value bound to name, innermost binding first.
func (e *Env) Lookup(name string) (object.Value, bool) {
	for ; e != nil; e = e.next {
		if e.name == name {
			return e.val, true
		}
	}
	return object.Value{}, false
}

// Evaluator evaluates core-calculus expressions. It carries the global
// environment (registered primitives, top-level vals) and a step counter used
// by the benchmark harness to report work in evaluator steps rather than
// wall-clock time.
type Evaluator struct {
	// Globals maps names of registered primitives and top-level vals to
	// their values. Lookup order is locals first, then Globals.
	Globals map[string]object.Value
	// MaxSteps, when positive, aborts evaluation after that many steps;
	// a guard against runaway queries in interactive use. Limits.MaxSteps
	// is honored as well; either tripping aborts the query.
	MaxSteps int64
	// Limits bounds the resources of this evaluation; the zero value is
	// unlimited. Exhaustion yields a *ResourceError.
	Limits Limits
	// Params holds the argument frame of a prepared query: the value of
	// each $name placeholder for this execution. An unbound placeholder is
	// an error only if evaluated, like an unbound variable.
	Params map[string]object.Value

	// The work counters are atomic because closures that escape an
	// evaluation (top-level vals of function type) capture ev, and the
	// compiled engine's parallel tabulation may call such a closure from
	// several workers at once. Snapshot them through Counters.
	//
	// Steps counts evaluated nodes. Cells counts collection/array cells
	// charged by constructors, tabulation, gen and index. Tabs counts
	// array tabulations performed (ArrayTab evaluations) — the
	// materializations the section 5 array rules exist to avoid. SetOps
	// counts set/bag algebra operations: unions, big unions, ranked
	// unions, gen and index. Iters counts comprehension loop-body
	// evaluations (big unions, ranked unions, summation) — the
	// intermediate-collection traffic of a query, on the same terms the
	// paper's section 5 measurements used.
	Steps  atomic.Int64
	Cells  atomic.Int64
	Tabs   atomic.Int64
	SetOps atomic.Int64
	Iters  atomic.Int64

	// ctx and deadline carry per-evaluation interrupt state; set by
	// EvalCtx and checked amortized in Eval.
	ctx      context.Context
	deadline time.Time
	// depth is the current Eval recursion depth, tracked only when
	// Limits.MaxDepth is set.
	depth int

	// profLevel selects operator-level span profiling for EvalExpr calls;
	// prof is the live accumulation context of the current EvalExpr and
	// lastSpans the folded tree of the most recent one. prof is cleared on
	// the way out of EvalExpr so escaped closures never touch stale state.
	profLevel ProfLevel
	prof      *ProfCtx
	lastSpans *SpanNode
}

// New returns an evaluator over the given globals (which may be nil).
func New(globals map[string]object.Value) *Evaluator {
	if globals == nil {
		globals = map[string]object.Value{}
	}
	return &Evaluator{Globals: globals}
}

// EvalCtx evaluates e in env under ctx: cancelling ctx, exceeding its
// deadline, or exceeding Limits.Timeout aborts evaluation with a
// *ResourceError. The interrupt checks are amortized over interruptInterval
// steps so the per-node cost of guarding stays negligible.
func (ev *Evaluator) EvalCtx(ctx context.Context, e ast.Expr, env *Env) (object.Value, error) {
	ev.ctx = ctx
	if ev.Limits.Timeout > 0 {
		ev.deadline = time.Now().Add(ev.Limits.Timeout)
	}
	// Clear the interrupt state on the way out: closures that escape this
	// evaluation (top-level vals of function type) capture ev, and a later
	// call through them must not observe a stale context or deadline.
	defer func() {
		ev.ctx = nil
		ev.deadline = time.Time{}
	}()
	return ev.Eval(e, env)
}

// checkInterrupt reports cancellation or deadline expiry as a
// *ResourceError; called amortized from Eval.
func (ev *Evaluator) checkInterrupt() error {
	return CheckInterrupt(ev.ctx, ev.deadline, ev.Limits.Timeout)
}

// chargeCells charges n cells against the cell budget, saturating rather
// than overflowing the counter. Constructors charge BEFORE allocating, so
// a budget violation aborts without the allocation ever happening.
func (ev *Evaluator) chargeCells(n int64) error {
	for {
		old := ev.Cells.Load()
		nw := old + n
		if n > math.MaxInt64-old {
			nw = math.MaxInt64
		}
		if ev.Cells.CompareAndSwap(old, nw) {
			if max := ev.Limits.MaxCells; max > 0 && nw > max {
				return &ResourceError{Kind: ResourceCells, Limit: max, Used: nw}
			}
			return nil
		}
	}
}

// Eval evaluates e in env. Language-level partiality (out-of-bounds
// subscripts, get on a non-singleton, division by zero) yields the ⊥ value;
// Go errors are reserved for conditions a well-typed query cannot produce
// (unbound variables, kind mismatches in external primitives) and for
// resource-budget exhaustion (*ResourceError).
func (ev *Evaluator) Eval(e ast.Expr, env *Env) (object.Value, error) {
	// The span hook sits outside the depth guard so profiled invocation
	// counts match the compiled engine, which wraps its profiling closure
	// around the depth-guarded node closure the same way.
	if p := ev.prof; p != nil {
		if id, ok := p.Plan.ID(e); ok {
			return ev.evalSpan(p, id, e, env)
		}
	}
	return ev.evalDepth(e, env)
}

// evalDepth applies the depth guard (when configured) and descends; the
// profiling hook in Eval dispatches here so a profiled node is not
// re-profiled.
func (ev *Evaluator) evalDepth(e ast.Expr, env *Env) (object.Value, error) {
	// Depth is checked outside the step charge so that a depth trip leaves
	// the tripping node's step uncharged — the compiled engine wraps its
	// step-charging node closures in a depth guard the same way, and the
	// two engines must report identical counters in every outcome.
	if max := ev.Limits.MaxDepth; max > 0 {
		ev.depth++
		if ev.depth > max {
			ev.depth--
			return object.Value{}, &ResourceError{Kind: ResourceDepth, Limit: int64(max), Used: int64(max) + 1}
		}
		v, err := ev.evalStep(e, env)
		ev.depth--
		return v, err
	}
	return ev.evalStep(e, env)
}

// evalStep charges one step, enforces the step budgets and the amortized
// interrupt check, then dispatches.
func (ev *Evaluator) evalStep(e ast.Expr, env *Env) (object.Value, error) {
	steps := ev.Steps.Add(1)
	if ev.MaxSteps > 0 && steps > ev.MaxSteps {
		return object.Value{}, &ResourceError{Kind: ResourceSteps, Limit: ev.MaxSteps, Used: steps}
	}
	if l := ev.Limits.MaxSteps; l > 0 && steps > l {
		return object.Value{}, &ResourceError{Kind: ResourceSteps, Limit: l, Used: steps}
	}
	if steps&(InterruptInterval-1) == 0 && (ev.ctx != nil || !ev.deadline.IsZero()) {
		if err := ev.checkInterrupt(); err != nil {
			return object.Value{}, err
		}
	}
	return ev.eval(e, env)
}

// eval dispatches on the node kind; the per-node guards live in Eval.
func (ev *Evaluator) eval(e ast.Expr, env *Env) (object.Value, error) {
	switch n := e.(type) {
	case *ast.Var:
		if v, ok := env.Lookup(n.Name); ok {
			return v, nil
		}
		if v, ok := ev.Globals[n.Name]; ok {
			return v, nil
		}
		return object.Value{}, fmt.Errorf("eval: unbound variable %q", n.Name)

	case *ast.Param:
		if v, ok := ev.Params[n.Name]; ok {
			return v, nil
		}
		return object.Value{}, fmt.Errorf("eval: unbound parameter $%s", n.Name)

	case *ast.Lam:
		// A closure over the current environment.
		body, param := n.Body, n.Param
		return object.Func(func(arg object.Value) (object.Value, error) {
			return ev.Eval(body, env.Bind(param, arg))
		}), nil

	case *ast.App:
		fn, err := ev.Eval(n.Fn, env)
		if err != nil {
			return object.Value{}, err
		}
		if fn.IsBottom() {
			return fn, nil
		}
		arg, err := ev.Eval(n.Arg, env)
		if err != nil {
			return object.Value{}, err
		}
		if arg.IsBottom() {
			return arg, nil
		}
		if fn.Kind != object.KFunc {
			return object.Value{}, fmt.Errorf("eval: application of non-function %s", fn.Kind)
		}
		return fn.Fn(arg)

	case *ast.Tuple:
		elems := make([]object.Value, len(n.Elems))
		for i, x := range n.Elems {
			v, err := ev.Eval(x, env)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			elems[i] = v
		}
		return object.Tuple(elems...), nil

	case *ast.Proj:
		v, err := ev.Eval(n.Tuple, env)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		return v.Proj(n.I - 1)

	case *ast.EmptySet:
		return object.EmptySet, nil

	case *ast.Singleton:
		v, err := ev.Eval(n.Elem, env)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		if err := ev.chargeCells(1); err != nil {
			return object.Value{}, err
		}
		return object.Set(v), nil

	case *ast.Union:
		ev.SetOps.Add(1)
		l, err := ev.Eval(n.L, env)
		if err != nil {
			return object.Value{}, err
		}
		if l.IsBottom() {
			return l, nil
		}
		r, err := ev.Eval(n.R, env)
		if err != nil {
			return object.Value{}, err
		}
		if r.IsBottom() {
			return r, nil
		}
		if err := ev.chargeCells(int64(len(l.Elems) + len(r.Elems))); err != nil {
			return object.Value{}, err
		}
		return object.Union(l, r)

	case *ast.BigUnion:
		return ev.bigUnion(n.Head, n.Var, n.Over, env)

	case *ast.Get:
		s, err := ev.Eval(n.Set, env)
		if err != nil {
			return object.Value{}, err
		}
		if s.IsBottom() {
			return s, nil
		}
		return GetValue(s)

	case *ast.BoolLit:
		return object.Bool(n.Val), nil

	case *ast.If:
		c, err := ev.Eval(n.Cond, env)
		if err != nil {
			return object.Value{}, err
		}
		if c.IsBottom() {
			return c, nil
		}
		b, err := c.AsBool()
		if err != nil {
			return object.Value{}, fmt.Errorf("eval: if condition: %w", err)
		}
		if b {
			return ev.Eval(n.Then, env)
		}
		return ev.Eval(n.Else, env)

	case *ast.Cmp:
		l, err := ev.Eval(n.L, env)
		if err != nil {
			return object.Value{}, err
		}
		if l.IsBottom() {
			return l, nil
		}
		r, err := ev.Eval(n.R, env)
		if err != nil {
			return object.Value{}, err
		}
		if r.IsBottom() {
			return r, nil
		}
		return EvalCmp(n.Op, l, r)

	case *ast.NatLit:
		return object.Nat(n.Val), nil

	case *ast.RealLit:
		return object.Real(n.Val), nil

	case *ast.StringLit:
		return object.String_(n.Val), nil

	case *ast.Arith:
		l, err := ev.Eval(n.L, env)
		if err != nil {
			return object.Value{}, err
		}
		if l.IsBottom() {
			return l, nil
		}
		r, err := ev.Eval(n.R, env)
		if err != nil {
			return object.Value{}, err
		}
		if r.IsBottom() {
			return r, nil
		}
		return Arith(n.Op, l, r)

	case *ast.Gen:
		v, err := ev.Eval(n.N, env)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		m, err := v.AsNat()
		if err != nil {
			return object.Value{}, fmt.Errorf("eval: gen: %w", err)
		}
		ev.SetOps.Add(1)
		if err := ev.chargeCells(m); err != nil {
			return object.Value{}, err
		}
		return GenSet(m), nil

	case *ast.Sum:
		over, err := ev.Eval(n.Over, env)
		if err != nil {
			return object.Value{}, err
		}
		if over.IsBottom() {
			return over, nil
		}
		if over.Kind != object.KSet && over.Kind != object.KBag {
			return object.Value{}, fmt.Errorf("eval: sum over %s", over.Kind)
		}
		var acc SumAcc
		ev.Iters.Add(int64(len(over.Elems)))
		for _, x := range over.Elems {
			v, err := ev.Eval(n.Head, env.Bind(n.Var, x))
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			if err := acc.Add(v); err != nil {
				return object.Value{}, err
			}
		}
		return acc.Value(), nil

	case *ast.ArrayTab:
		ev.Tabs.Add(1)
		shape := make([]int, len(n.Bounds))
		size := int64(1)
		for j, b := range n.Bounds {
			v, err := ev.Eval(b, env)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			m, err := v.AsNat()
			if err != nil {
				return object.Value{}, fmt.Errorf("eval: tabulation bound %d: %w", j+1, err)
			}
			shape[j] = int(m)
			if m > 0 && size > math.MaxInt64/m {
				size = math.MaxInt64 // saturate; the charge below will trip
			} else {
				size *= m
			}
		}
		// Charge the whole tabulation before Tabulate allocates it: this is
		// the fail-fast path for [[ ... | i < 10^9 ]] under a cell budget.
		if err := ev.chargeCells(size); err != nil {
			return object.Value{}, err
		}
		var bottom object.Value
		sawBottom := false
		arr, err := object.Tabulate(shape, func(idx []int) (object.Value, error) {
			e2 := env
			for j, name := range n.Idx {
				e2 = e2.Bind(name, object.Nat(int64(idx[j])))
			}
			v, err := ev.Eval(n.Head, e2)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() && !sawBottom {
				bottom, sawBottom = v, true
			}
			return v, nil
		})
		if err != nil {
			return object.Value{}, err
		}
		if sawBottom {
			// An erroneous element makes the whole tabulation ⊥; this
			// strictness is why the δ^p rule is "sound only if e1 is
			// error-free" (section 5).
			return bottom, nil
		}
		return arr, nil

	case *ast.Subscript:
		a, err := ev.Eval(n.Arr, env)
		if err != nil {
			return object.Value{}, err
		}
		if a.IsBottom() {
			return a, nil
		}
		i, err := ev.Eval(n.Index, env)
		if err != nil {
			return object.Value{}, err
		}
		if i.IsBottom() {
			return i, nil
		}
		return object.SubValueCtx(ev.ctx, a, i)

	case *ast.Dim:
		a, err := ev.Eval(n.Arr, env)
		if err != nil {
			return object.Value{}, err
		}
		if a.IsBottom() {
			return a, nil
		}
		return CheckedDim(a, n.K)

	case *ast.Index:
		ev.SetOps.Add(1)
		s, err := ev.Eval(n.Set, env)
		if err != nil {
			return object.Value{}, err
		}
		if s.IsBottom() {
			return s, nil
		}
		return object.IndexChecked(s, n.K, ev.chargeCells)

	case *ast.MkArray:
		shape := make([]int, len(n.Dims))
		size := 1
		for j, d := range n.Dims {
			v, err := ev.Eval(d, env)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			m, err := v.AsNat()
			if err != nil {
				return object.Value{}, fmt.Errorf("eval: array literal dimension %d: %w", j+1, err)
			}
			shape[j] = int(m)
			size *= int(m)
		}
		if size != len(n.Elems) {
			// "This construct is undefined if the number of value
			// expressions doesn't match the product of the dimension
			// expressions" (section 3).
			return object.Bottom(fmt.Sprintf("array literal: %d values for shape %v", len(n.Elems), shape)), nil
		}
		if err := ev.chargeCells(int64(len(n.Elems))); err != nil {
			return object.Value{}, err
		}
		data := make([]object.Value, len(n.Elems))
		for i, x := range n.Elems {
			v, err := ev.Eval(x, env)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			data[i] = v
		}
		arr, err := object.Array(shape, data)
		if err != nil {
			return object.Value{}, err
		}
		return arr, nil

	case *ast.Bottom:
		return object.Bottom("explicit bottom"), nil

	case *ast.EmptyBag:
		return object.EmptyBag, nil

	case *ast.SingletonBag:
		v, err := ev.Eval(n.Elem, env)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		if err := ev.chargeCells(1); err != nil {
			return object.Value{}, err
		}
		return object.Bag(v), nil

	case *ast.BagUnion:
		ev.SetOps.Add(1)
		l, err := ev.Eval(n.L, env)
		if err != nil {
			return object.Value{}, err
		}
		if l.IsBottom() {
			return l, nil
		}
		r, err := ev.Eval(n.R, env)
		if err != nil {
			return object.Value{}, err
		}
		if r.IsBottom() {
			return r, nil
		}
		if err := ev.chargeCells(int64(len(l.Elems) + len(r.Elems))); err != nil {
			return object.Value{}, err
		}
		return object.BagUnion(l, r)

	case *ast.BigBagUnion:
		return ev.bigBagUnion(n.Head, n.Var, n.Over, env)

	case *ast.RankUnion:
		return ev.rankUnion(n.Head, n.Var, n.RankVar, n.Over, env, false)

	case *ast.RankBagUnion:
		return ev.rankUnion(n.Head, n.Var, n.RankVar, n.Over, env, true)
	}
	return object.Value{}, fmt.Errorf("eval: unhandled node %s", ast.NodeName(e))
}

// bigUnion evaluates ⋃{ head | var ∈ over }: it collects the element slices
// of all result sets and canonicalizes once, so a union of n singletons costs
// O(n log n) rather than O(n²).
func (ev *Evaluator) bigUnion(head ast.Expr, varName string, over ast.Expr, env *Env) (object.Value, error) {
	s, err := ev.Eval(over, env)
	if err != nil {
		return object.Value{}, err
	}
	if s.IsBottom() {
		return s, nil
	}
	if s.Kind != object.KSet {
		return object.Value{}, fmt.Errorf("eval: big union over %s", s.Kind)
	}
	ev.SetOps.Add(1)
	ev.Iters.Add(int64(len(s.Elems)))
	var all []object.Value
	for _, x := range s.Elems {
		v, err := ev.Eval(head, env.Bind(varName, x))
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		if v.Kind != object.KSet {
			return object.Value{}, fmt.Errorf("eval: big union body produced %s", v.Kind)
		}
		if err := ev.chargeCells(int64(len(v.Elems))); err != nil {
			return object.Value{}, err
		}
		all = append(all, v.Elems...)
	}
	return object.Set(all...), nil
}

func (ev *Evaluator) bigBagUnion(head ast.Expr, varName string, over ast.Expr, env *Env) (object.Value, error) {
	s, err := ev.Eval(over, env)
	if err != nil {
		return object.Value{}, err
	}
	if s.IsBottom() {
		return s, nil
	}
	if s.Kind != object.KBag {
		return object.Value{}, fmt.Errorf("eval: big bag union over %s", s.Kind)
	}
	ev.SetOps.Add(1)
	ev.Iters.Add(int64(len(s.Elems)))
	var all []object.Value
	for _, x := range s.Elems {
		v, err := ev.Eval(head, env.Bind(varName, x))
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		if v.Kind != object.KBag {
			return object.Value{}, fmt.Errorf("eval: big bag union body produced %s", v.Kind)
		}
		if err := ev.chargeCells(int64(len(v.Elems))); err != nil {
			return object.Value{}, err
		}
		all = append(all, v.Elems...)
	}
	return object.Bag(all...), nil
}

// rankUnion evaluates ⋃_r / ⊎_r (section 6): the collection is traversed in
// its canonical (sorted) order, binding the 1-based rank alongside each
// element. In the bag form, equal values receive consecutive ranks, which
// is exactly what position-in-sorted-order gives.
func (ev *Evaluator) rankUnion(head ast.Expr, varName, rankVar string, over ast.Expr, env *Env, bag bool) (object.Value, error) {
	s, err := ev.Eval(over, env)
	if err != nil {
		return object.Value{}, err
	}
	if s.IsBottom() {
		return s, nil
	}
	wantKind, wantName := object.KSet, "ranked union"
	if bag {
		wantKind, wantName = object.KBag, "ranked bag union"
	}
	if s.Kind != wantKind {
		return object.Value{}, fmt.Errorf("eval: %s over %s", wantName, s.Kind)
	}
	ev.SetOps.Add(1)
	ev.Iters.Add(int64(len(s.Elems)))
	var all []object.Value
	for i, x := range s.Elems {
		e2 := env.Bind(varName, x).Bind(rankVar, object.Nat(int64(i+1)))
		v, err := ev.Eval(head, e2)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		if v.Kind != wantKind {
			return object.Value{}, fmt.Errorf("eval: %s body produced %s", wantName, v.Kind)
		}
		if err := ev.chargeCells(int64(len(v.Elems))); err != nil {
			return object.Value{}, err
		}
		all = append(all, v.Elems...)
	}
	if bag {
		return object.Bag(all...), nil
	}
	return object.Set(all...), nil
}
