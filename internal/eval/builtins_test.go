package eval

import (
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/object"
)

// callBuiltin applies the named builtin to v through the Builtins map, as
// the evaluator would.
func callBuiltin(t *testing.T, name string, v object.Value) (object.Value, error) {
	t.Helper()
	f, ok := Builtins()[name]
	if !ok {
		t.Fatalf("builtin %q not registered", name)
	}
	if f.Kind != object.KFunc {
		t.Fatalf("builtin %q is %s, want a function", name, f.Kind)
	}
	return f.Fn(v)
}

func mustBuiltin(t *testing.T, name string, v object.Value) object.Value {
	t.Helper()
	out, err := callBuiltin(t, name, v)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func nats(ns ...int64) []object.Value {
	vs := make([]object.Value, len(ns))
	for i, n := range ns {
		vs[i] = object.Nat(n)
	}
	return vs
}

func TestMinMax(t *testing.T) {
	s := object.Set(nats(5, 2, 9, 2)...)
	if got := mustBuiltin(t, "min", s); !object.Equal(got, object.Nat(2)) {
		t.Errorf("min = %s, want 2", got)
	}
	if got := mustBuiltin(t, "max", s); !object.Equal(got, object.Nat(9)) {
		t.Errorf("max = %s, want 9", got)
	}

	// Bags keep duplicates but are still sorted, so min/max work the same.
	b := object.Bag(nats(7, 3, 3, 7)...)
	if got := mustBuiltin(t, "min", b); !object.Equal(got, object.Nat(3)) {
		t.Errorf("bag min = %s, want 3", got)
	}
	if got := mustBuiltin(t, "max", b); !object.Equal(got, object.Nat(7)) {
		t.Errorf("bag max = %s, want 7", got)
	}
}

func TestMinMaxEmptyIsBottom(t *testing.T) {
	for _, name := range []string{"min", "max"} {
		for _, coll := range []object.Value{object.EmptySet, object.EmptyBag} {
			got := mustBuiltin(t, name, coll)
			if !got.IsBottom() {
				t.Errorf("%s of empty %s = %s, want ⊥", name, coll.Kind, got)
			}
		}
	}
}

func TestMinMaxKindError(t *testing.T) {
	for _, name := range []string{"min", "max"} {
		if _, err := callBuiltin(t, name, object.Nat(3)); err == nil {
			t.Errorf("%s of a nat: want a kind error", name)
		}
	}
}

func TestMember(t *testing.T) {
	s := object.Set(nats(1, 3, 5)...)
	cases := []struct {
		elem object.Value
		want bool
	}{
		{object.Nat(3), true},
		{object.Nat(4), false},
	}
	for _, tc := range cases {
		got := mustBuiltin(t, "member", object.Tuple(tc.elem, s))
		if !object.Equal(got, object.Bool(tc.want)) {
			t.Errorf("member(%s, %s) = %s, want %v", tc.elem, s, got, tc.want)
		}
	}
	if _, err := callBuiltin(t, "member", object.Nat(1)); err == nil {
		t.Error("member of a non-pair: want an error")
	}
}

func TestNot(t *testing.T) {
	if got := mustBuiltin(t, "not", object.Bool(true)); !object.Equal(got, object.Bool(false)) {
		t.Errorf("not true = %s", got)
	}
	if got := mustBuiltin(t, "not", object.Bool(false)); !object.Equal(got, object.Bool(true)) {
		t.Errorf("not false = %s", got)
	}
	if _, err := callBuiltin(t, "not", object.Nat(0)); err == nil {
		t.Error("not of a nat: want an error")
	}
}

func TestCount(t *testing.T) {
	if got := mustBuiltin(t, "count", object.Set(nats(4, 4, 7)...)); !object.Equal(got, object.Nat(2)) {
		t.Errorf("count of {4,7} = %s, want 2 (sets deduplicate)", got)
	}
	// Bags count multiplicities.
	if got := mustBuiltin(t, "count", object.Bag(nats(4, 4, 7)...)); !object.Equal(got, object.Nat(3)) {
		t.Errorf("count of {|4,4,7|} = %s, want 3", got)
	}
	if got := mustBuiltin(t, "count", object.EmptySet); !object.Equal(got, object.Nat(0)) {
		t.Errorf("count of {} = %s, want 0", got)
	}
	if _, err := callBuiltin(t, "count", object.Bool(true)); err == nil {
		t.Error("count of a bool: want an error")
	}
}

func TestRank(t *testing.T) {
	got := mustBuiltin(t, "rank", object.Set(nats(30, 10, 20)...))
	want := object.Set(
		object.Tuple(object.Nat(10), object.Nat(1)),
		object.Tuple(object.Nat(20), object.Nat(2)),
		object.Tuple(object.Nat(30), object.Nat(3)),
	)
	if !object.Equal(got, want) {
		t.Errorf("rank = %s, want %s", got, want)
	}
	if got := mustBuiltin(t, "rank", object.EmptySet); !object.Equal(got, object.EmptySet) {
		t.Errorf("rank of {} = %s, want {}", got)
	}
	if _, err := callBuiltin(t, "rank", object.Bag(nats(1)...)); err == nil {
		t.Error("rank of a bag: want an error (ranking is defined on sets)")
	}
}

// TestBuiltinErrorsNameTheBuiltin pins the error convention: a kind
// mismatch names the builtin so REPL diagnostics point at the call site.
func TestBuiltinErrorsNameTheBuiltin(t *testing.T) {
	for _, name := range []string{"min", "max", "member", "not", "count", "rank"} {
		_, err := callBuiltin(t, name, object.String_("nope"))
		if err == nil {
			t.Errorf("%s(string): want an error", name)
			continue
		}
		if !strings.HasPrefix(err.Error(), name+":") {
			t.Errorf("%s error %q does not name the builtin", name, err)
		}
	}
}
