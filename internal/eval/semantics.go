// Engine-shared operational semantics. The interpreter (eval.go) and the
// compiled engine (internal/compile) must agree bit for bit: same result
// values, same ⊥ diagnostics, same error strings, same counter charging
// events. Every semantic rule that both engines execute lives here once, so
// parity is structural rather than maintained by hand.

package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
)

// InterruptInterval is how many evaluator steps pass between context /
// deadline checks in either engine; a power of two so the amortized check
// reduces to a mask test.
const InterruptInterval = 256

// CheckInterrupt reports context cancellation or deadline expiry as a
// *ResourceError; engines call it amortized every InterruptInterval steps.
// timeout is the configured Limits.Timeout, reported as the tripped limit
// when the engine-computed deadline has passed.
func CheckInterrupt(ctx context.Context, deadline time.Time, timeout time.Duration) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			kind := ResourceCancelled
			if errors.Is(err, context.DeadlineExceeded) {
				kind = ResourceTimeout
			}
			return &ResourceError{Kind: kind, Cause: err}
		}
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return &ResourceError{Kind: ResourceTimeout, Limit: int64(timeout), Cause: context.DeadlineExceeded}
	}
	return nil
}

// EvalCmp applies a comparison operator to two evaluated, non-⊥ operands.
// Function values admit no decidable equality, so comparing them is a
// kind error rather than ⊥.
func EvalCmp(op ast.CmpOp, l, r object.Value) (object.Value, error) {
	if l.Kind == object.KFunc || r.Kind == object.KFunc {
		return object.Value{}, fmt.Errorf("eval: comparison of function values")
	}
	c := object.Compare(l, r)
	switch op {
	case ast.OpEq:
		return object.Bool(c == 0), nil
	case ast.OpNe:
		return object.Bool(c != 0), nil
	case ast.OpLt:
		return object.Bool(c < 0), nil
	case ast.OpGt:
		return object.Bool(c > 0), nil
	case ast.OpLe:
		return object.Bool(c <= 0), nil
	case ast.OpGe:
		return object.Bool(c >= 0), nil
	}
	return object.Value{}, fmt.Errorf("eval: bad comparison op %q", op)
}

// GetValue implements get: the unique element of a singleton set; ⊥ on any
// other cardinality (section 3's partial inverse of the singleton former).
func GetValue(s object.Value) (object.Value, error) {
	if s.Kind != object.KSet {
		return object.Value{}, fmt.Errorf("eval: get on %s", s.Kind)
	}
	if len(s.Elems) != 1 {
		return object.Bottom(fmt.Sprintf("get on a set of cardinality %d", len(s.Elems))), nil
	}
	return s.Elems[0], nil
}

// GenSet builds {0, 1, ..., m-1}; the caller has already charged m cells.
func GenSet(m int64) object.Value {
	elems := make([]object.Value, m)
	for i := int64(0); i < m; i++ {
		elems[i] = object.Nat(i)
	}
	// Naturals in ascending order are already canonical.
	return object.SetFromSorted(elems)
}

// SumAcc accumulates a summation body-by-body, overloading at nat and real
// exactly as the interpreter always has: a nat total is tracked alongside
// the real total, and the first real-valued body commits the sum to real.
type SumAcc struct {
	accN   int64
	accR   float64
	isReal bool
}

// Add folds one body value into the accumulator; non-numeric values are a
// kind error.
func (a *SumAcc) Add(v object.Value) error {
	switch v.Kind {
	case object.KNat:
		a.accN += v.N
		a.accR += float64(v.N)
	case object.KReal:
		a.isReal = true
		a.accR += v.R
	default:
		return fmt.Errorf("eval: sum of non-numeric %s", v.Kind)
	}
	return nil
}

// Value returns the accumulated sum at the committed numeric kind.
func (a *SumAcc) Value() object.Value {
	if a.isReal {
		return object.Real(a.accR)
	}
	return object.Nat(a.accN)
}

// CheckedDim implements dim_k: the extent of a k-dimensional array, with a
// kind error when the static dimension annotation disagrees with the value.
func CheckedDim(a object.Value, k int) (object.Value, error) {
	if a.Kind == object.KArray && len(a.Shape) != k {
		return object.Value{}, fmt.Errorf("eval: dim_%d of %d-dimensional array", k, len(a.Shape))
	}
	return object.DimValue(a)
}

// Arith applies an arithmetic operator to two evaluated numeric operands,
// overloading at nat and real. On naturals, subtraction is monus and
// division/modulus by zero is ⊥. On reals, subtraction is exact and
// division by zero is ⊥; modulus follows math.Mod.
func Arith(op ast.ArithOp, l, r object.Value) (object.Value, error) {
	if l.Kind == object.KNat && r.Kind == object.KNat {
		a, b := l.N, r.N
		switch op {
		case ast.OpAdd:
			return object.Nat(a + b), nil
		case ast.OpSub: // monus
			if a < b {
				return object.Nat(0), nil
			}
			return object.Nat(a - b), nil
		case ast.OpMul:
			return object.Nat(a * b), nil
		case ast.OpDiv:
			if b == 0 {
				return object.Bottom("division by zero"), nil
			}
			return object.Nat(a / b), nil
		case ast.OpMod:
			if b == 0 {
				return object.Bottom("modulus by zero"), nil
			}
			return object.Nat(a % b), nil
		}
		return object.Value{}, fmt.Errorf("eval: bad arithmetic op %q", op)
	}
	a, err := l.AsReal()
	if err != nil {
		return object.Value{}, fmt.Errorf("eval: arithmetic: %w", err)
	}
	b, err := r.AsReal()
	if err != nil {
		return object.Value{}, fmt.Errorf("eval: arithmetic: %w", err)
	}
	var f float64
	switch op {
	case ast.OpAdd:
		f = a + b
	case ast.OpSub:
		f = a - b
	case ast.OpMul:
		f = a * b
	case ast.OpDiv:
		if b == 0 {
			return object.Bottom("division by zero"), nil
		}
		f = a / b
	case ast.OpMod:
		if b == 0 {
			return object.Bottom("modulus by zero"), nil
		}
		f = math.Mod(a, b)
	default:
		return object.Value{}, fmt.Errorf("eval: bad arithmetic op %q", op)
	}
	if !object.IsFinite(f) {
		return object.Bottom("non-finite arithmetic result"), nil
	}
	return object.Real(f), nil
}
