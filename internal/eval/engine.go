package eval

import (
	"context"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
)

// Counters is a snapshot of the work counters an engine charges while
// evaluating a query: steps (nodes executed), cells (collection/array cells
// allocated), tabulations, set-algebra operations and comprehension
// iterations. Both engines charge on identical events, so the numbers are
// comparable across engines and stable under parallel execution.
type Counters struct {
	Steps  int64
	Cells  int64
	Tabs   int64
	SetOps int64
	Iters  int64
}

// Engine executes core-calculus expressions. Two implementations exist: the
// reference tree-walking interpreter in this package (*Evaluator) and the
// compiled engine in internal/compile, which lowers the AST to slot-resolved
// Go closures. Both implement the same operational semantics bit for bit —
// the differential test suite at the module root holds them to byte-identical
// exchange-format output, identical ⊥ diagnostics and identical counters.
type Engine interface {
	// Name identifies the engine ("interp" or "compiled") for reports.
	Name() string
	// EvalExpr evaluates a closed core expression under ctx, honoring the
	// engine's configured step/cell/depth/timeout limits.
	EvalExpr(ctx context.Context, e ast.Expr) (object.Value, error)
	// Counters reports the work charged by the most recent EvalExpr.
	Counters() Counters
}

// Name identifies the tree-walking interpreter; part of Engine.
func (ev *Evaluator) Name() string { return "interp" }

// EvalExpr evaluates e with no local bindings; part of Engine. When span
// profiling is enabled it builds the evaluation's span plan first and folds
// the accumulated tree on the way out (even on error), so SpanTree reflects
// partial evaluations too.
func (ev *Evaluator) EvalExpr(ctx context.Context, e ast.Expr) (object.Value, error) {
	if ev.profLevel == ProfOff {
		ev.lastSpans = nil
		return ev.EvalCtx(ctx, e, nil)
	}
	ev.prof = NewProfCtx(NewSpanPlan(e, ev.profLevel))
	defer func() {
		ev.lastSpans = ev.prof.Fold()
		ev.prof = nil
	}()
	return ev.EvalCtx(ctx, e, nil)
}

// Counters snapshots the interpreter's work counters; part of Engine.
func (ev *Evaluator) Counters() Counters {
	return Counters{Steps: ev.Steps.Load(), Cells: ev.Cells.Load(), Tabs: ev.Tabs.Load(), SetOps: ev.SetOps.Load(), Iters: ev.Iters.Load()}
}
