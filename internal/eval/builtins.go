package eval

import (
	"fmt"

	"github.com/aqldb/aql/internal/object"
)

// Builtins returns the derived operators that the paper promotes to
// primitive status for efficiency (section 3, "Derived primitives"): min,
// max and ∈ (member), together with not and count. All are expressible in
// the calculus — e.g. min(X) = get(filter(λy.∀x∈X(y≤x))(X)) — but the
// primitive implementations are linear (or logarithmic, for member) instead
// of quadratic.
//
// The returned map is fresh; callers may extend it with registered external
// primitives.
func Builtins() map[string]object.Value {
	return map[string]object.Value{
		"min":    object.Func(minPrim),
		"max":    object.Func(maxPrim),
		"member": object.Func(memberPrim),
		"not":    object.Func(notPrim),
		"count":  object.Func(countPrim),
		"rank":   object.Func(rankPrim),
	}
}

// minPrim: {t} -> t. ⊥ on the empty set. Sets are canonical (sorted), so
// the minimum is the first element.
func minPrim(v object.Value) (object.Value, error) {
	switch v.Kind {
	case object.KSet, object.KBag:
		if len(v.Elems) == 0 {
			return object.Bottom("min of an empty collection"), nil
		}
		return v.Elems[0], nil
	}
	return object.Value{}, fmt.Errorf("min: expected a set or bag, got %s", v.Kind)
}

// maxPrim: {t} -> t. ⊥ on the empty set.
func maxPrim(v object.Value) (object.Value, error) {
	switch v.Kind {
	case object.KSet, object.KBag:
		if len(v.Elems) == 0 {
			return object.Bottom("max of an empty collection"), nil
		}
		return v.Elems[len(v.Elems)-1], nil
	}
	return object.Value{}, fmt.Errorf("max: expected a set or bag, got %s", v.Kind)
}

// memberPrim: t * {t} -> bool, by binary search (the paper's ∈).
func memberPrim(v object.Value) (object.Value, error) {
	if v.Kind != object.KTuple || len(v.Elems) != 2 {
		return object.Value{}, fmt.Errorf("member: expected an (element, set) pair, got %s", v.Kind)
	}
	ok, err := object.Member(v.Elems[0], v.Elems[1])
	if err != nil {
		return object.Value{}, fmt.Errorf("member: %w", err)
	}
	return object.Bool(ok), nil
}

// notPrim: bool -> bool.
func notPrim(v object.Value) (object.Value, error) {
	b, err := v.AsBool()
	if err != nil {
		return object.Value{}, fmt.Errorf("not: %w", err)
	}
	return object.Bool(!b), nil
}

// rankPrim: {t} -> {t * nat}. rank(X) pairs each element with its 1-based
// position in the linear order <=_t — the derived operator of section 6
// (rank(X) = ⋃_r{{(x, i)} | x_i ∈ X}), exposed as a primitive so surface
// queries can sort.
func rankPrim(v object.Value) (object.Value, error) {
	if v.Kind != object.KSet {
		return object.Value{}, fmt.Errorf("rank: expected a set, got %s", v.Kind)
	}
	elems := make([]object.Value, len(v.Elems))
	for i, x := range v.Elems {
		elems[i] = object.Tuple(x, object.Nat(int64(i+1)))
	}
	return object.Set(elems...), nil
}

// countPrim: {t} -> nat. count(X) = Σ{1 | x ∈ X} (section 2), provided
// primitively so the optimizer's cost model can rely on it being O(1) over
// canonical collections.
func countPrim(v object.Value) (object.Value, error) {
	n, err := object.Card(v)
	if err != nil {
		return object.Value{}, fmt.Errorf("count: %w", err)
	}
	return object.Nat(int64(n)), nil
}
