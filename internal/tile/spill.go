package tile

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"context"

	"github.com/aqldb/aql/internal/object"
)

// spillFile is the cache's append-only temp file for spilled tiles.
// Segments are written once (at spill time) and read back on demand; there
// is no reclamation short of Close, matching the lifetime of a session's
// intermediates.
type spillFile struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

func (s *spillFile) append(b []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		f, err := os.CreateTemp("", "aql-spill-*.dat")
		if err != nil {
			return 0, fmt.Errorf("tile: create spill file: %w", err)
		}
		s.f = f
	}
	off := s.size
	if _, err := s.f.WriteAt(b, off); err != nil {
		return 0, fmt.Errorf("tile: write spill: %w", err)
	}
	s.size += int64(len(b))
	return off, nil
}

func (s *spillFile) readAt(b []byte, off int64) error {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	if f == nil {
		return fmt.Errorf("tile: spill file not open")
	}
	_, err := f.ReadAt(b, off)
	return err
}

func (s *spillFile) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	name := s.f.Name()
	err := s.f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	s.f = nil
	s.size = 0
	return err
}

type spillSeg struct {
	off   int64
	len   int64
	cells int
}

// SpillArray writes an eager array's tiles to the spill file and returns a
// lazy array reading them back on demand through the tile cache. It is the
// out-of-core path for oversized intermediates: the session spills a val
// binding whose accounted size exceeds the cache budget, so the binding's
// memory footprint drops to whatever tiles the budget admits. Counters are
// attributed to the collector in ctx, if any.
func (c *Cache) SpillArray(ctx context.Context, v object.Value) (object.Value, error) {
	if v.Kind != object.KArray {
		return object.Value{}, fmt.Errorf("tile: can only spill arrays, got %s", v.Kind)
	}
	cells, err := v.CellsCtx(ctx)
	if err != nil {
		return object.Value{}, err
	}
	size := len(cells)
	tc := c.cfg.tileCells()
	var segs []spillSeg
	for start := 0; start < size; start += tc {
		end := start + tc
		if end > size {
			end = size
		}
		b, err := encodeCells(cells[start:end])
		if err != nil {
			return object.Value{}, err
		}
		off, err := c.spill.append(b)
		if err != nil {
			return object.Value{}, err
		}
		segs = append(segs, spillSeg{off: off, len: int64(len(b)), cells: end - start})
		c.each(ctx, func(s *counters) { s.spillWritten.Add(int64(len(b))) })
	}
	arr := c.NewArray(size, func(ctx context.Context, start, n int) ([]object.Value, error) {
		t := start / tc
		if t >= len(segs) || segs[t].cells != n || start != t*tc {
			return nil, fmt.Errorf("tile: misaligned spill read [%d, %d)", start, start+n)
		}
		buf := make([]byte, segs[t].len)
		if err := c.spill.readAt(buf, segs[t].off); err != nil {
			return nil, fmt.Errorf("tile: read spill tile %d: %w", t, err)
		}
		out, err := decodeCells(buf, n)
		if err != nil {
			return nil, fmt.Errorf("tile: decode spill tile %d: %w", t, err)
		}
		c.each(ctx, func(s *counters) { s.spillRead.Add(segs[t].len) })
		return out, nil
	})
	return object.LazyArray(v.Shape, arr)
}

// The spill codec is a self-describing binary encoding of complex objects.
// exchange text is not used because it round-trips ⊥ without its diagnostic
// message (the message renders as a comment), and spilled values must be
// byte-identical on read-back — including error diagnostics. Collections
// are written in their canonical order, so reconstruction preserves
// canonical form without re-sorting.

func encodeCells(cells []object.Value) ([]byte, error) {
	var b []byte
	for i := range cells {
		var err error
		b, err = encodeValue(b, cells[i])
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeCells(b []byte, n int) ([]object.Value, error) {
	out := make([]object.Value, n)
	pos := 0
	for i := 0; i < n; i++ {
		v, next, err := decodeValue(b, pos)
		if err != nil {
			return nil, err
		}
		out[i] = v
		pos = next
	}
	if pos != len(b) {
		return nil, fmt.Errorf("tile: %d trailing bytes in spill tile", len(b)-pos)
	}
	return out, nil
}

func putUvarint(b []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(b, tmp[:n]...)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func encodeValue(b []byte, v object.Value) ([]byte, error) {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case object.KBottom:
		return putString(b, v.S), nil
	case object.KBool:
		if v.B {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case object.KNat:
		return putUvarint(b, uint64(v.N)), nil
	case object.KReal:
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v.R))
		return append(b, tmp[:]...), nil
	case object.KString:
		return putString(b, v.S), nil
	case object.KBase:
		return putString(putString(b, v.Base), v.S), nil
	case object.KTuple, object.KSet, object.KBag:
		b = putUvarint(b, uint64(len(v.Elems)))
		for _, e := range v.Elems {
			var err error
			b, err = encodeValue(b, e)
			if err != nil {
				return nil, err
			}
		}
		return b, nil
	case object.KArray:
		cells, err := v.Cells()
		if err != nil {
			return nil, err
		}
		b = putUvarint(b, uint64(len(v.Shape)))
		for _, d := range v.Shape {
			b = putUvarint(b, uint64(d))
		}
		for _, e := range cells {
			b, err = encodeValue(b, e)
			if err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	return nil, fmt.Errorf("tile: cannot spill %s value", v.Kind)
}

func decodeUvarint(b []byte, pos int) (uint64, int, error) {
	x, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("tile: corrupt spill varint")
	}
	return x, pos + n, nil
}

func decodeString(b []byte, pos int) (string, int, error) {
	n, pos, err := decodeUvarint(b, pos)
	if err != nil {
		return "", 0, err
	}
	if uint64(len(b)-pos) < n {
		return "", 0, fmt.Errorf("tile: corrupt spill string")
	}
	return string(b[pos : pos+int(n)]), pos + int(n), nil
}

func decodeValue(b []byte, pos int) (object.Value, int, error) {
	if pos >= len(b) {
		return object.Value{}, 0, fmt.Errorf("tile: truncated spill value")
	}
	kind := object.Kind(b[pos])
	pos++
	switch kind {
	case object.KBottom:
		s, pos, err := decodeString(b, pos)
		if err != nil {
			return object.Value{}, 0, err
		}
		return object.Bottom(s), pos, nil
	case object.KBool:
		if pos >= len(b) {
			return object.Value{}, 0, fmt.Errorf("tile: truncated spill bool")
		}
		return object.Bool(b[pos] != 0), pos + 1, nil
	case object.KNat:
		x, pos, err := decodeUvarint(b, pos)
		if err != nil {
			return object.Value{}, 0, err
		}
		return object.Nat(int64(x)), pos, nil
	case object.KReal:
		if len(b)-pos < 8 {
			return object.Value{}, 0, fmt.Errorf("tile: truncated spill real")
		}
		r := math.Float64frombits(binary.BigEndian.Uint64(b[pos:]))
		return object.Real(r), pos + 8, nil
	case object.KString:
		s, pos, err := decodeString(b, pos)
		if err != nil {
			return object.Value{}, 0, err
		}
		return object.String_(s), pos, nil
	case object.KBase:
		base, pos, err := decodeString(b, pos)
		if err != nil {
			return object.Value{}, 0, err
		}
		lit, pos, err := decodeString(b, pos)
		if err != nil {
			return object.Value{}, 0, err
		}
		return object.Base(base, lit), pos, nil
	case object.KTuple, object.KSet, object.KBag:
		n, pos, err := decodeUvarint(b, pos)
		if err != nil {
			return object.Value{}, 0, err
		}
		elems := make([]object.Value, n)
		for i := range elems {
			elems[i], pos, err = decodeValue(b, pos)
			if err != nil {
				return object.Value{}, 0, err
			}
		}
		return object.Value{Kind: kind, Elems: elems}, pos, nil
	case object.KArray:
		rank, pos, err := decodeUvarint(b, pos)
		if err != nil {
			return object.Value{}, 0, err
		}
		shape := make([]int, rank)
		size := 1
		for i := range shape {
			d, p, err := decodeUvarint(b, pos)
			if err != nil {
				return object.Value{}, 0, err
			}
			shape[i] = int(d)
			size *= int(d)
			pos = p
		}
		data := make([]object.Value, size)
		for i := range data {
			data[i], pos, err = decodeValue(b, pos)
			if err != nil {
				return object.Value{}, 0, err
			}
		}
		v, err := object.Array(shape, data)
		if err != nil {
			return object.Value{}, 0, err
		}
		return v, pos, nil
	}
	return object.Value{}, 0, fmt.Errorf("tile: corrupt spill kind %d", kind)
}
