package tile

import "context"

// Collector accumulates tile I/O counters for one query. The cache adds to
// both its global stats and the collector found in the fetch context, so
// per-query attribution stays exact under concurrent queries sharing one
// cache (each increment lands in exactly one collector).
type Collector struct {
	counters
}

// Snapshot returns the collector's current totals.
func (c *Collector) Snapshot() Counters { return c.counters.snapshot() }

type collectorKey struct{}

// WithCollector returns a ctx carrying a fresh per-query collector, and the
// collector itself. Sessions install one per statement and fold the
// snapshot into the statement's QueryReport.
func WithCollector(ctx context.Context) (context.Context, *Collector) {
	if ctx == nil {
		ctx = context.Background()
	}
	col := &Collector{}
	return context.WithValue(ctx, collectorKey{}, col), col
}

func collectorFrom(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	col, _ := ctx.Value(collectorKey{}).(*Collector)
	return col
}
