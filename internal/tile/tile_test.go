package tile

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/aqldb/aql/internal/object"
)

// seqFetch serves Real(start+i) cells and counts fetch calls, optionally
// failing calls according to errs (consumed in order).
type seqFetch struct {
	calls atomic.Int64
	mu    sync.Mutex
	errs  []error
}

func (s *seqFetch) fetch(ctx context.Context, start, n int) ([]object.Value, error) {
	s.calls.Add(1)
	s.mu.Lock()
	var err error
	if len(s.errs) > 0 {
		err, s.errs = s.errs[0], s.errs[1:]
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]object.Value, n)
	for i := range out {
		out[i] = object.Real(float64(start + i))
	}
	return out, nil
}

func TestCellAndRange(t *testing.T) {
	c := New(Config{TileCells: 4})
	defer c.Close()
	f := &seqFetch{}
	a := c.NewArray(10, f.fetch)
	for i := 0; i < 10; i++ {
		v, err := a.Cell(nil, i)
		if err != nil {
			t.Fatal(err)
		}
		if v.R != float64(i) {
			t.Fatalf("cell %d = %v, want %d", i, v, i)
		}
	}
	cells, err := a.CellRange(nil, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range cells {
		if v.R != float64(3+i) {
			t.Fatalf("range cell %d = %v, want %d", i, v, 3+i)
		}
	}
	if _, err := a.Cell(nil, 10); err == nil {
		t.Error("out-of-range cell read succeeded")
	}
	if _, err := a.CellRange(nil, 8, 5); err == nil {
		t.Error("out-of-range cell range read succeeded")
	}
}

func TestSequentialScanCounters(t *testing.T) {
	c := New(Config{TileCells: 8})
	defer c.Close()
	f := &seqFetch{}
	const n = 8 * 10
	a := c.NewArray(n, f.fetch)
	if a.TileCount() != 10 {
		t.Fatalf("TileCount = %d, want 10", a.TileCount())
	}
	for i := 0; i < n; i++ {
		if _, err := a.Cell(nil, i); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	// Every tile is fetched from the source exactly once: by demand (miss)
	// or by readahead.
	if st.TileMisses+st.Prefetches != 10 {
		t.Errorf("misses %d + prefetches %d != 10 tiles", st.TileMisses, st.Prefetches)
	}
	if f.calls.Load() != 10 {
		t.Errorf("fetch calls = %d, want 10", f.calls.Load())
	}
	if st.Prefetches == 0 || st.PrefetchUseful != st.Prefetches {
		t.Errorf("sequential scan: prefetches %d, useful %d; want all useful", st.Prefetches, st.PrefetchUseful)
	}
	if st.TileHits == 0 {
		t.Errorf("no tile hits on a repeat-access scan")
	}
	if st.BytesScanned != int64(n)*cellPayload {
		t.Errorf("bytes scanned = %d, want %d", st.BytesScanned, int64(n)*cellPayload)
	}
	if st.BytesReturned != int64(n)*cellPayload {
		t.Errorf("bytes returned = %d, want %d", st.BytesReturned, int64(n)*cellPayload)
	}
}

func TestEvictionThrashTwoTileBudget(t *testing.T) {
	const tc = 4
	c := New(Config{TileCells: tc, Budget: 2 * tc * cellBytes, NoPrefetch: true})
	defer c.Close()
	f := &seqFetch{}
	const n = tc * 16
	a := c.NewArray(n, f.fetch)
	// Three forward scans over 16 tiles with room for 2: every scan after
	// the first still faults every tile (LRU keeps only the newest two).
	for scan := 0; scan < 3; scan++ {
		for i := 0; i < n; i++ {
			v, err := a.Cell(nil, i)
			if err != nil {
				t.Fatal(err)
			}
			if v.R != float64(i) {
				t.Fatalf("scan %d cell %d = %v", scan, i, v)
			}
		}
	}
	st := c.Stats()
	if st.TileMisses != 3*16 {
		t.Errorf("misses = %d, want %d (thrash refetches every tile)", st.TileMisses, 3*16)
	}
	if st.Evictions < 3*16-2 {
		t.Errorf("evictions = %d, want >= %d", st.Evictions, 3*16-2)
	}
	if got := c.Resident(); got > 2*tc*cellBytes {
		t.Errorf("resident %d exceeds budget %d", got, 2*tc*cellBytes)
	}
	if got := c.PeakResident(); got > 2*tc*cellBytes {
		t.Errorf("peak resident %d exceeds budget %d", got, 2*tc*cellBytes)
	}
}

func TestParallelWorkersShareOneCache(t *testing.T) {
	c := New(Config{TileCells: 16})
	defer c.Close()
	f := &seqFetch{}
	const n = 16 * 64
	a := c.NewArray(n, f.fetch)

	const workers = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker scans a strided slice of the cell space, so
			// workers collide on tiles constantly.
			for i := w; i < n; i += workers {
				v, err := a.Cell(context.Background(), i)
				if err != nil {
					errs[w] = err
					return
				}
				if v.R != float64(i) {
					errs[w] = fmt.Errorf("worker %d: cell %d = %v", w, i, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Singleflight: tiles were fetched once each despite 12 workers racing
	// (prefetch may add fetches for tiles already counted, but never more
	// than one fetch per tile total because prefetchTile checks presence).
	if got := f.calls.Load(); got != 64 {
		t.Errorf("fetch calls = %d, want 64 (one per tile)", got)
	}
}

func TestFetchErrorsNotCached(t *testing.T) {
	boom := errors.New("boom")
	c := New(Config{TileCells: 4, NoPrefetch: true})
	defer c.Close()
	f := &seqFetch{errs: []error{boom}}
	a := c.NewArray(8, f.fetch)
	if _, err := a.Cell(nil, 0); !errors.Is(err, boom) {
		t.Fatalf("first access error = %v, want boom", err)
	}
	// The failure was not cached: the next access refetches and succeeds.
	v, err := a.Cell(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.R != 0 {
		t.Fatalf("cell 0 after retry = %v", v)
	}
	if f.calls.Load() != 2 {
		t.Errorf("fetch calls = %d, want 2", f.calls.Load())
	}
}

func TestCollectorAttribution(t *testing.T) {
	c := New(Config{TileCells: 4, NoPrefetch: true})
	defer c.Close()
	f := &seqFetch{}
	a := c.NewArray(8, f.fetch)

	ctx1, col1 := WithCollector(context.Background())
	if _, err := a.Cell(ctx1, 0); err != nil {
		t.Fatal(err)
	}
	ctx2, col2 := WithCollector(context.Background())
	if _, err := a.Cell(ctx2, 0); err != nil {
		t.Fatal(err)
	}
	s1, s2 := col1.Snapshot(), col2.Snapshot()
	if s1.TileMisses != 1 || s1.TileHits != 0 {
		t.Errorf("query 1: misses %d hits %d, want 1/0", s1.TileMisses, s1.TileHits)
	}
	if s2.TileMisses != 0 || s2.TileHits != 1 {
		t.Errorf("query 2: misses %d hits %d, want 0/1", s2.TileMisses, s2.TileHits)
	}
	global := c.Stats()
	if global.TileMisses != 1 || global.TileHits != 1 {
		t.Errorf("global: misses %d hits %d, want 1/1", global.TileMisses, global.TileHits)
	}
}

func TestSpillRoundtrip(t *testing.T) {
	c := New(Config{TileCells: 3})
	defer c.Close()

	inner, err := object.Array([]int{2}, []object.Value{object.Nat(7), object.Bottom("inner ⊥")})
	if err != nil {
		t.Fatal(err)
	}
	cells := []object.Value{
		object.Real(1.5),
		object.Bottom("division by zero somewhere"),
		object.Nat(42),
		object.Bool(true),
		object.String_("hello"),
		object.Base("date", "1996-06-04"),
		object.Tuple(object.Nat(1), object.Real(-0.25)),
		inner,
	}
	v, err := object.Array([]int{2, 4}, cells)
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := c.SpillArray(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	if !spilled.IsLazy() {
		t.Fatal("spilled value is not lazy")
	}
	// Byte-identity including ⊥ diagnostics: the printed forms must match
	// exactly (the exchange text format would drop the ⊥ messages).
	if got, want := spilled.String(), v.String(); got != want {
		t.Errorf("spill roundtrip mismatch:\n got %s\nwant %s", got, want)
	}
	st := c.Stats()
	if st.SpillBytesWritten == 0 || st.SpillBytesRead == 0 {
		t.Errorf("spill bytes written/read = %d/%d, want non-zero", st.SpillBytesWritten, st.SpillBytesRead)
	}
}

func TestOverBudget(t *testing.T) {
	c := New(Config{Budget: 100 * cellBytes})
	defer c.Close()
	if c.OverBudget(100) {
		t.Error("100 cells over a 100-cell budget")
	}
	if !c.OverBudget(101) {
		t.Error("101 cells not over a 100-cell budget")
	}
}

func TestWaiterSurvivesCancelledFetcher(t *testing.T) {
	c := New(Config{TileCells: 4, NoPrefetch: true})
	defer c.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	fetch := func(ctx context.Context, start, n int) ([]object.Value, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
			return nil, ctx.Err() // the cancelled fetcher fails
		}
		out := make([]object.Value, n)
		for i := range out {
			out[i] = object.Real(float64(start + i))
		}
		return out, nil
	}
	a := c.NewArray(4, fetch)

	cancelCtx, cancel := context.WithCancel(context.Background())
	fetcherDone := make(chan error, 1)
	go func() {
		_, err := a.Cell(cancelCtx, 0)
		fetcherDone <- err
	}()
	<-started
	cancel()

	// A second reader with a live context waits on the in-flight fetch,
	// sees it fail, and re-runs the fetch under its own context.
	waiterDone := make(chan error, 1)
	go func() {
		v, err := a.Cell(context.Background(), 1)
		if err == nil && v.R != 1 {
			err = fmt.Errorf("cell 1 = %v", v)
		}
		waiterDone <- err
	}()
	close(release)
	if err := <-fetcherDone; err == nil {
		t.Error("cancelled fetcher returned no error")
	}
	if err := <-waiterDone; err != nil {
		t.Errorf("waiter after cancelled fetcher: %v", err)
	}
}
