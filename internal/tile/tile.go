// Package tile implements out-of-core array storage: lazy arrays whose
// cells are fetched on demand in fixed-size row-major tiles, held in a
// byte-budgeted LRU cache shared by all arrays of a session.
//
// A tile t of an array with N flat cells and tile size C covers cells
// [t*C, min((t+1)*C, N)). Tiles are fetched through a caller-supplied Fetch
// function (the NetCDF cell-range reader, or the spill file), deduplicated
// by a per-tile singleflight so concurrent tabulation workers faulting the
// same tile trigger one I/O, and evicted least-recently-used when the byte
// budget is exceeded. Sequential access (tile t demanded right after t-1)
// triggers synchronous readahead of t+1; prefetch is deterministic so lazy
// execution stays reproducible, and its usefulness is tracked (a prefetched
// tile later served on demand counts PrefetchUseful) for the
// prefetch-efficiency metric.
//
// Fetch errors are never cached: the failed tile is removed, so a transient
// fault surfaces to exactly the demand that hit it and the next access
// retries. Waiters of a cancelled fetcher re-run the fetch under their own
// context rather than inheriting the cancellation.
package tile

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"context"

	"github.com/aqldb/aql/internal/object"
)

// Fetch retrieves n cells starting at flat row-major offset start from the
// underlying source. The cache only ever asks for whole tiles (the final
// tile may be short). Implementations must be safe for concurrent use and
// deterministic: same range, same cells.
type Fetch func(ctx context.Context, start, n int) ([]object.Value, error)

// Config tunes a Cache. Zero fields select the noted defaults.
type Config struct {
	// TileCells is the number of cells per tile (default 4096).
	TileCells int
	// Budget is the maximum resident cache size in accounted bytes
	// (default 64 MiB). A tile's accounted cost is its cell count times
	// the in-memory size of an object.Value.
	Budget int64
	// NoPrefetch disables sequential readahead.
	NoPrefetch bool
}

const (
	// DefaultTileCells is the default tile size in cells.
	DefaultTileCells = 4096
	// DefaultBudget is the default cache budget in bytes.
	DefaultBudget = 64 << 20
)

func (c *Config) tileCells() int {
	if c.TileCells > 0 {
		return c.TileCells
	}
	return DefaultTileCells
}

func (c *Config) budget() int64 {
	if c.Budget > 0 {
		return c.Budget
	}
	return DefaultBudget
}

// cellBytes is the accounted in-memory cost of one cached cell.
var cellBytes = int64(unsafe.Sizeof(object.Value{}))

// cellPayload is the nominal data size of one cell for the bytes-scanned /
// bytes-returned counters: the 8-byte scalar payload. Using one nominal
// size on both sides makes the ratio read directly as I/O amplification.
const cellPayload = 8

// counters is the atomic counter block shared by the cache-global stats
// and per-query collectors.
type counters struct {
	hits           atomic.Int64
	misses         atomic.Int64
	prefetches     atomic.Int64
	prefetchUseful atomic.Int64
	bytesScanned   atomic.Int64
	bytesReturned  atomic.Int64
	spillWritten   atomic.Int64
	spillRead      atomic.Int64
	evictions      atomic.Int64
}

// Counters is a point-in-time snapshot of tile I/O activity.
type Counters struct {
	// TileHits and TileMisses count demand tile lookups served from cache
	// vs. faulted in from the source.
	TileHits   int64
	TileMisses int64
	// Prefetches counts readahead tile fetches; PrefetchUseful counts
	// prefetched tiles later served on demand (prefetch efficiency =
	// useful/prefetches).
	Prefetches     int64
	PrefetchUseful int64
	// BytesScanned counts nominal data bytes fetched from the source into
	// the cache (demand + prefetch); BytesReturned counts nominal bytes of
	// cells actually delivered to queries. Scanned >> returned means the
	// access pattern wastes tile bandwidth.
	BytesScanned  int64
	BytesReturned int64
	// SpillBytesWritten and SpillBytesRead count actual encoded bytes
	// moving to and from the spill file.
	SpillBytesWritten int64
	SpillBytesRead    int64
	// Evictions counts tiles dropped to stay within budget.
	Evictions int64
}

func (c *counters) snapshot() Counters {
	return Counters{
		TileHits:          c.hits.Load(),
		TileMisses:        c.misses.Load(),
		Prefetches:        c.prefetches.Load(),
		PrefetchUseful:    c.prefetchUseful.Load(),
		BytesScanned:      c.bytesScanned.Load(),
		BytesReturned:     c.bytesReturned.Load(),
		SpillBytesWritten: c.spillWritten.Load(),
		SpillBytesRead:    c.spillRead.Load(),
		Evictions:         c.evictions.Load(),
	}
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.TileHits += other.TileHits
	c.TileMisses += other.TileMisses
	c.Prefetches += other.Prefetches
	c.PrefetchUseful += other.PrefetchUseful
	c.BytesScanned += other.BytesScanned
	c.BytesReturned += other.BytesReturned
	c.SpillBytesWritten += other.SpillBytesWritten
	c.SpillBytesRead += other.SpillBytesRead
	c.Evictions += other.Evictions
}

// entry is one cached (or in-flight) tile.
type entry struct {
	key   key
	cells []object.Value
	bytes int64
	elem  *list.Element // LRU position; nil while fetching
	ready chan struct{} // non-nil while a fetch is in flight
	// prefetched marks a tile inserted by readahead and not yet demanded.
	prefetched bool
}

type key struct {
	owner uint64
	tile  int
}

// Cache is a byte-budgeted LRU tile cache shared by the lazy arrays of a
// session. Safe for concurrent use.
type Cache struct {
	cfg   Config
	stats counters

	nextOwner atomic.Uint64

	mu       sync.Mutex
	entries  map[key]*entry
	lru      list.List // front = most recently used; resident entries only
	resident int64
	peak     int64

	spill spillFile
}

// New returns an empty cache with the given configuration.
func New(cfg Config) *Cache {
	return &Cache{cfg: cfg, entries: make(map[key]*entry)}
}

// Config reports the cache's effective configuration.
func (c *Cache) Config() Config {
	return Config{TileCells: c.cfg.tileCells(), Budget: c.cfg.budget(), NoPrefetch: c.cfg.NoPrefetch}
}

// Stats returns a snapshot of the cache-global counters.
func (c *Cache) Stats() Counters { return c.stats.snapshot() }

// OverBudget reports whether holding an array of the given cell count
// eagerly would exceed the cache budget — the spill trigger for oversized
// intermediates.
func (c *Cache) OverBudget(cells int) bool {
	return int64(cells)*cellBytes > c.cfg.budget()
}

// Resident reports the currently accounted resident bytes.
func (c *Cache) Resident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// PeakResident reports the high-water mark of resident bytes.
func (c *Cache) PeakResident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// Close releases the spill file, if one was created. Cached tiles become
// garbage; arrays backed by the spill file must not be read afterwards.
func (c *Cache) Close() error { return c.spill.close() }

// each applies f to the cache-global counters and, when ctx carries a
// per-query collector, to that collector too.
func (c *Cache) each(ctx context.Context, f func(*counters)) {
	f(&c.stats)
	if col := collectorFrom(ctx); col != nil {
		f(&col.counters)
	}
}

// Array is a lazy-array backing: object.ArrayBacking over one fetch source,
// with all tiles living in the shared Cache.
type Array struct {
	c     *Cache
	owner uint64
	size  int
	fetch Fetch
	// lastTile drives sequential-access detection for prefetch.
	lastTile atomic.Int64
}

// NewArray registers a lazy array of size cells over the given fetch
// source.
func (c *Cache) NewArray(size int, fetch Fetch) *Array {
	a := &Array{c: c, owner: c.nextOwner.Add(1), size: size, fetch: fetch}
	a.lastTile.Store(-1)
	return a
}

// Size implements object.ArrayBacking.
func (a *Array) Size() int { return a.size }

// TileCount reports the number of tiles covering the array; the cost
// estimator probes for it to predict tiles touched by a full scan.
func (a *Array) TileCount() int {
	tc := a.c.cfg.tileCells()
	return (a.size + tc - 1) / tc
}

// Cell implements object.ArrayBacking: it serves the cell at flat offset
// off from the tile cache, faulting the tile in if needed.
func (a *Array) Cell(ctx context.Context, off int) (object.Value, error) {
	if off < 0 || off >= a.size {
		return object.Value{}, fmt.Errorf("tile: cell %d out of range [0, %d)", off, a.size)
	}
	tc := a.c.cfg.tileCells()
	t := off / tc
	cells, err := a.c.tileCells(ctx, a, t)
	if err != nil {
		return object.Value{}, err
	}
	v := cells[off-t*tc]
	a.c.each(ctx, func(s *counters) { s.bytesReturned.Add(cellPayload) })
	a.maybePrefetch(ctx, t)
	return v, nil
}

// CellRange implements object.RangeBacking: a bulk read across tiles, used
// by materialization and tile-aligned scans.
func (a *Array) CellRange(ctx context.Context, start, n int) ([]object.Value, error) {
	if start < 0 || n < 0 || start+n > a.size {
		return nil, fmt.Errorf("tile: cell range [%d, %d) out of range [0, %d)", start, start+n, a.size)
	}
	out := make([]object.Value, 0, n)
	tc := a.c.cfg.tileCells()
	for off := start; off < start+n; {
		t := off / tc
		cells, err := a.c.tileCells(ctx, a, t)
		if err != nil {
			return nil, err
		}
		lo := off - t*tc
		hi := len(cells)
		if rem := start + n - off; hi-lo > rem {
			hi = lo + rem
		}
		out = append(out, cells[lo:hi]...)
		a.maybePrefetch(ctx, t)
		off += hi - lo
	}
	a.c.each(ctx, func(s *counters) { s.bytesReturned.Add(int64(n) * cellPayload) })
	return out, nil
}

// tileLen returns the cell count of tile t.
func (a *Array) tileLen(t int) int {
	tc := a.c.cfg.tileCells()
	start := t * tc
	n := tc
	if a.size-start < n {
		n = a.size - start
	}
	return n
}

// maybePrefetch issues synchronous readahead of tile t+1 when tile t was
// demanded immediately after tile t-1 (a row-major sequential scan, the
// access pattern of tabulation).
func (a *Array) maybePrefetch(ctx context.Context, t int) {
	if a.c.cfg.NoPrefetch {
		return
	}
	last := a.lastTile.Swap(int64(t))
	if int64(t) != last+1 || t+1 >= a.TileCount() {
		return
	}
	a.c.prefetchTile(ctx, a, t+1)
}

// tileCells returns the cells of tile t, serving from cache or faulting it
// in. Concurrent fetches of the same tile are deduplicated; fetch errors
// are not cached, and waiters whose fetcher failed re-run the fetch under
// their own context.
func (c *Cache) tileCells(ctx context.Context, a *Array, t int) ([]object.Value, error) {
	k := key{a.owner, t}
	for {
		c.mu.Lock()
		if e, ok := c.entries[k]; ok {
			if e.ready == nil {
				// Resident: serve and refresh recency.
				c.lru.MoveToFront(e.elem)
				if e.prefetched {
					e.prefetched = false
					c.each(ctx, func(s *counters) { s.prefetchUseful.Add(1) })
				}
				cells := e.cells
				c.mu.Unlock()
				c.each(ctx, func(s *counters) { s.hits.Add(1) })
				return cells, nil
			}
			ready := e.ready
			c.mu.Unlock()
			select {
			case <-ready:
				continue // re-check: resident on success, absent on failure
			case <-ctx2done(ctx):
				return nil, ctx.Err()
			}
		}
		e := &entry{key: k, ready: make(chan struct{})}
		c.entries[k] = e
		c.mu.Unlock()
		c.each(ctx, func(s *counters) { s.misses.Add(1) })

		cells, err := a.fetch(ctx, t*c.cfg.tileCells(), a.tileLen(t))
		if err == nil && len(cells) != a.tileLen(t) {
			err = fmt.Errorf("tile: fetch returned %d cells for tile %d, want %d", len(cells), t, a.tileLen(t))
		}
		c.mu.Lock()
		if err != nil {
			delete(c.entries, k)
			close(e.ready)
			c.mu.Unlock()
			return nil, err
		}
		c.insertLocked(e, cells)
		c.mu.Unlock()
		c.each(ctx, func(s *counters) { s.bytesScanned.Add(int64(len(cells)) * cellPayload) })
		return cells, nil
	}
}

// prefetchTile faults tile t into the cache if absent. Prefetch errors are
// swallowed (the tile is simply not cached); the demand fetch that actually
// needs it will retry and surface the error.
func (c *Cache) prefetchTile(ctx context.Context, a *Array, t int) {
	k := key{a.owner, t}
	c.mu.Lock()
	if _, ok := c.entries[k]; ok {
		c.mu.Unlock()
		return
	}
	e := &entry{key: k, ready: make(chan struct{})}
	c.entries[k] = e
	c.mu.Unlock()

	cells, err := a.fetch(ctx, t*c.cfg.tileCells(), a.tileLen(t))
	if err == nil && len(cells) != a.tileLen(t) {
		err = fmt.Errorf("tile: short prefetch")
	}
	c.mu.Lock()
	if err != nil {
		delete(c.entries, k)
		close(e.ready)
		c.mu.Unlock()
		return
	}
	e.prefetched = true
	c.insertLocked(e, cells)
	c.mu.Unlock()
	c.each(ctx, func(s *counters) {
		s.prefetches.Add(1)
		s.bytesScanned.Add(int64(len(cells)) * cellPayload)
	})
}

// insertLocked completes a fetch: the entry becomes resident, waiters wake,
// and the LRU is trimmed back under budget. Caller holds c.mu.
func (c *Cache) insertLocked(e *entry, cells []object.Value) {
	e.cells = cells
	e.bytes = int64(len(cells)) * cellBytes
	e.elem = c.lru.PushFront(e)
	ready := e.ready
	e.ready = nil
	close(ready)
	c.resident += e.bytes
	// Evict before recording the high-water mark, so peak reflects the
	// post-trim residency: at most the budget, except when a single tile
	// exceeds it (the just-inserted tile is never evicted — a demanded
	// tile must be resident while it is served).
	for c.resident > c.cfg.budget() && c.lru.Len() > 1 {
		tail := c.lru.Back()
		ev := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, ev.key)
		c.resident -= ev.bytes
		c.stats.evictions.Add(1)
	}
	if c.resident > c.peak {
		c.peak = c.resident
	}
}

// ctx2done returns ctx.Done(), tolerating a nil ctx (non-cancellable).
func ctx2done(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}
