// Package env implements the AQL top-level environment (section 4.1 of the
// paper): the registries that make the system open. External primitives,
// data readers and writers, macros, vals, and optimizer rules can all be
// added at runtime, mirroring the paper's RegisterCO and registration
// routines.
//
// An Env is safe for concurrent use: registrations and val bindings take a
// write lock, lookups and the Globals/GlobalTypes snapshots a read lock.
// Every mutation bumps a monotone epoch counter; the query server keys its
// prepared-plan cache on the epoch, so a `val` rebinding or a new reader
// registration invalidates exactly the plans whose global snapshot it could
// have changed.
package env

import (
	"fmt"
	"sort"
	"sync"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/opt"
	"github.com/aqldb/aql/internal/prim"
	"github.com/aqldb/aql/internal/types"
)

// Reader inputs a complex object given a parameter object — the
// counterpart of the paper's `readval V using READER at E` (section 4.1).
type Reader func(arg object.Value) (object.Value, error)

// Writer outputs a complex object given a parameter object — the
// counterpart of `writeval E using WRITER at E'`.
type Writer func(arg, data object.Value) error

// Env is the AQL top-level environment.
type Env struct {
	mu        sync.RWMutex
	epoch     uint64
	prims     map[string]object.Value
	primTypes map[string]*types.Type
	vals      map[string]object.Value
	valTypes  map[string]*types.Type
	macros    map[string]ast.Expr
	macroType map[string]*types.Type
	readers   map[string]Reader
	writers   map[string]Writer

	// Optimizer is the query optimizer; its rule bases are extensible via
	// Optimizer.AddRule.
	Optimizer *opt.Optimizer
}

// New returns an environment with the derived-operator builtins (min, max,
// member, not, count), the standard external primitive library (heatindex,
// sunset, scalar math), and the standard optimizer. Callers add macros and
// readers on top (package repl registers the standard macros and the
// NetCDF readers).
func New() *Env {
	e := &Env{
		prims:     map[string]object.Value{},
		primTypes: map[string]*types.Type{},
		vals:      map[string]object.Value{},
		valTypes:  map[string]*types.Type{},
		macros:    map[string]ast.Expr{},
		macroType: map[string]*types.Type{},
		readers:   map[string]Reader{},
		writers:   map[string]Writer{},
		Optimizer: opt.New(),
	}
	for name, fn := range eval.Builtins() {
		e.prims[name] = fn
	}
	e.primTypes["min"] = types.MustParse("{'a} -> 'a")
	e.primTypes["max"] = types.MustParse("{'a} -> 'a")
	e.primTypes["member"] = types.MustParse("'a * {'a} -> bool")
	e.primTypes["not"] = types.MustParse("bool -> bool")
	e.primTypes["count"] = types.MustParse("{'a} -> nat")
	e.primTypes["rank"] = types.MustParse("{'a} -> {'a * nat}")
	for _, p := range prim.Standard() {
		e.prims[p.Name] = p.Fn
		e.primTypes[p.Name] = p.Type
	}
	return e
}

// Epoch returns the environment's mutation counter. It increases on every
// registration or val binding, so two equal epochs bracket a window in
// which Globals/GlobalTypes snapshots were identical.
func (e *Env) Epoch() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch
}

// RegisterPrimitive makes an external function available to queries under
// the given name with the given declared type — the paper's RegisterCO.
func (e *Env) RegisterPrimitive(name string, fn func(object.Value) (object.Value, error), typ *types.Type) error {
	if typ == nil || typ.Kind != types.KindFunc {
		return fmt.Errorf("env: primitive %q needs a function type, got %v", name, typ)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.prims[name] = object.Func(fn)
	e.primTypes[name] = typ
	e.epoch++
	return nil
}

// RegisterReader registers a data reader under the given name.
func (e *Env) RegisterReader(name string, r Reader) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.readers[name] = r
	e.epoch++
}

// RegisterWriter registers a data writer under the given name.
func (e *Env) RegisterWriter(name string, w Writer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.writers[name] = w
	e.epoch++
}

// Reader returns the named reader.
func (e *Env) Reader(name string) (Reader, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.readers[name]
	if !ok {
		return nil, fmt.Errorf("env: no reader registered as %q", name)
	}
	return r, nil
}

// Writer returns the named writer.
func (e *Env) Writer(name string) (Writer, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	w, ok := e.writers[name]
	if !ok {
		return nil, fmt.Errorf("env: no writer registered as %q", name)
	}
	return w, nil
}

// SetVal binds a complex object to a top-level name with its type.
func (e *Env) SetVal(name string, v object.Value, typ *types.Type) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vals[name] = v
	e.valTypes[name] = typ
	e.epoch++
}

// Val returns a top-level val.
func (e *Env) Val(name string) (object.Value, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.vals[name]
	return v, ok
}

// DefineMacro records a core-calculus query under a name; macros are
// substituted into later queries before optimization (section 4.1). The
// body must already be macro-free (repl expands macros at definition time).
func (e *Env) DefineMacro(name string, body ast.Expr, typ *types.Type) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.macros[name] = body
	e.macroType[name] = typ
	e.epoch++
}

// Macro returns a macro body.
func (e *Env) Macro(name string) (ast.Expr, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m, ok := e.macros[name]
	return m, ok
}

// ExpandMacros substitutes macro bodies for free occurrences of macro names
// in the query. Macro bodies are themselves macro-free, so a single pass
// over the free variables suffices.
func (e *Env) ExpandMacros(query ast.Expr) ast.Expr {
	e.mu.RLock()
	defer e.mu.RUnlock()
	free := ast.FreeVars(query)
	names := make([]string, 0, len(free))
	for name := range free {
		if _, ok := e.macros[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names) // deterministic expansion order
	for _, name := range names {
		query = ast.Subst(query, name, e.macros[name])
	}
	return query
}

// Globals returns the evaluation environment: primitives and vals. The
// returned map is a fresh snapshot; mutating the Env afterwards does not
// change it (callers must still not modify it, as the Values are shared).
func (e *Env) Globals() map[string]object.Value {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]object.Value, len(e.prims)+len(e.vals))
	for k, v := range e.prims {
		out[k] = v
	}
	for k, v := range e.vals {
		out[k] = v
	}
	return out
}

// GlobalTypes returns the typechecking environment for primitives and
// vals. Macro names are not included: macros are substituted before
// typechecking.
func (e *Env) GlobalTypes() map[string]*types.Type {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]*types.Type, len(e.primTypes)+len(e.valTypes))
	for k, v := range e.primTypes {
		out[k] = v
	}
	for k, v := range e.valTypes {
		out[k] = v
	}
	return out
}

// Names returns all defined names (primitives, vals, macros), sorted; used
// by the REPL for diagnostics.
func (e *Env) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var names []string
	for k := range e.prims {
		names = append(names, k)
	}
	for k := range e.vals {
		names = append(names, k)
	}
	for k := range e.macros {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
