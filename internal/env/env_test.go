package env

import (
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/types"
)

func TestNewHasBuiltinsAndStandardPrims(t *testing.T) {
	e := New()
	globals := e.Globals()
	typesEnv := e.GlobalTypes()
	for _, name := range []string{"min", "max", "member", "not", "count",
		"heatindex", "sunset", "sqrt", "pow", "real", "trunc", "round"} {
		if _, ok := globals[name]; !ok {
			t.Errorf("global %q missing", name)
		}
		if _, ok := typesEnv[name]; !ok {
			t.Errorf("type for %q missing", name)
		}
	}
	if e.Optimizer == nil {
		t.Error("optimizer missing")
	}
}

func TestRegisterPrimitive(t *testing.T) {
	e := New()
	err := e.RegisterPrimitive("inc", func(v object.Value) (object.Value, error) {
		return object.Nat(v.N + 1), nil
	}, types.MustParse("nat -> nat"))
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := e.Globals()["inc"]
	if !ok || fn.Kind != object.KFunc {
		t.Fatal("inc not registered")
	}
	got, err := fn.Fn(object.Nat(41))
	if err != nil || got.N != 42 {
		t.Errorf("inc(41) = %v, %v", got, err)
	}
	// Non-function types are rejected.
	if err := e.RegisterPrimitive("bad", nil, types.Nat); err == nil {
		t.Error("non-function type accepted")
	}
	if err := e.RegisterPrimitive("bad", nil, nil); err == nil {
		t.Error("nil type accepted")
	}
}

func TestReadersAndWriters(t *testing.T) {
	e := New()
	if _, err := e.Reader("NOPE"); err == nil {
		t.Error("missing reader should error")
	}
	if _, err := e.Writer("NOPE"); err == nil {
		t.Error("missing writer should error")
	}
	e.RegisterReader("R", func(arg object.Value) (object.Value, error) {
		return arg, nil
	})
	r, err := e.Reader("R")
	if err != nil {
		t.Fatal(err)
	}
	v, err := r(object.Nat(7))
	if err != nil || v.N != 7 {
		t.Errorf("reader = %v, %v", v, err)
	}
	var wrote object.Value
	e.RegisterWriter("W", func(arg, data object.Value) error {
		wrote = data
		return nil
	})
	w, err := e.Writer("W")
	if err != nil {
		t.Fatal(err)
	}
	if err := w(object.Unit, object.Nat(9)); err != nil {
		t.Fatal(err)
	}
	if wrote.N != 9 {
		t.Errorf("writer captured %v", wrote)
	}
}

func TestValsShadowNothing(t *testing.T) {
	e := New()
	e.SetVal("X", object.Nat(3), types.Nat)
	if v, ok := e.Val("X"); !ok || v.N != 3 {
		t.Error("val not set")
	}
	if _, ok := e.Val("Y"); ok {
		t.Error("absent val found")
	}
	g := e.Globals()
	if g["X"].N != 3 {
		t.Error("val not in globals")
	}
	if e.GlobalTypes()["X"] != types.Nat {
		t.Error("val type not in global types")
	}
}

func TestMacroExpansion(t *testing.T) {
	e := New()
	// macro double = \x. x + x
	body := &ast.Lam{Param: "x", Body: &ast.Arith{
		Op: ast.OpAdd, L: &ast.Var{Name: "x"}, R: &ast.Var{Name: "x"}}}
	e.DefineMacro("double", body, types.MustParse("nat -> nat"))
	if _, ok := e.Macro("double"); !ok {
		t.Fatal("macro not defined")
	}
	q := &ast.App{Fn: &ast.Var{Name: "double"}, Arg: &ast.NatLit{Val: 5}}
	expanded := e.ExpandMacros(q)
	want := &ast.App{Fn: body, Arg: &ast.NatLit{Val: 5}}
	if !ast.AlphaEqual(expanded, want) {
		t.Errorf("expanded = %s, want %s", expanded, want)
	}
	// A bound occurrence of the macro name is not expanded.
	shadowed := &ast.Lam{Param: "double", Body: &ast.Var{Name: "double"}}
	if got := e.ExpandMacros(shadowed); !ast.AlphaEqual(got, shadowed) {
		t.Errorf("bound occurrence expanded: %s", got)
	}
}

func TestMacroExpansionDeterministic(t *testing.T) {
	e := New()
	e.DefineMacro("a", &ast.NatLit{Val: 1}, types.Nat)
	e.DefineMacro("b", &ast.NatLit{Val: 2}, types.Nat)
	q := &ast.Arith{Op: ast.OpAdd, L: &ast.Var{Name: "a"}, R: &ast.Var{Name: "b"}}
	first := e.ExpandMacros(q).String()
	for i := 0; i < 10; i++ {
		if got := e.ExpandMacros(q).String(); got != first {
			t.Fatal("expansion order nondeterministic")
		}
	}
}

func TestNames(t *testing.T) {
	e := New()
	e.SetVal("zzz_val", object.Nat(1), types.Nat)
	e.DefineMacro("zzz_macro", &ast.NatLit{Val: 1}, types.Nat)
	names := e.Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"min", "heatindex", "zzz_val", "zzz_macro"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Names() missing %q", want)
		}
	}
	// Sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}
