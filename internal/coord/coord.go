// Package coord implements coordinate-indexed dimensions — the second
// piece of future work in section 7 of the paper:
//
//	"we would like to investigate techniques for providing more meaningful
//	data types such as longitudes and latitudes as indices for scientific
//	arrays. Eventually, we would like to allow arbitrary linearly-ordered
//	types to be used as indices."
//
// An Axis maps a monotone sequence of coordinate values (latitudes,
// longitudes, timestamps) to the natural-number indices that NRCA arrays
// use, and back. Register installs an axis into an AQL environment as
// three primitives:
//
//	<name>_index : real -> nat           nearest index for a coordinate
//	<name>_coord : nat -> real           coordinate at an index
//	<name>_range : real * real -> nat * nat
//	                                     inclusive index range covering a
//	                                     coordinate interval
//
// so queries can be written against physical coordinates while the array
// machinery stays zero-based and rectangular — precisely the paper's
// lat_index / lon_index macros (section 4.2), now derived from data rather
// than hand-written.
package coord

import (
	"fmt"
	"math"
	"sort"

	"github.com/aqldb/aql/internal/env"
	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/types"
)

// Axis is a named coordinate dimension. Values must be strictly monotone
// (increasing or decreasing, as NetCDF latitude axes often are).
type Axis struct {
	Name   string
	Values []float64
	desc   bool // true when Values decrease
}

// NewAxis validates and builds an axis.
func NewAxis(name string, values []float64) (*Axis, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("coord: axis %q has no values", name)
	}
	desc := false
	if len(values) > 1 {
		desc = values[1] < values[0]
	}
	for i := 1; i < len(values); i++ {
		if !object.IsFinite(values[i]) {
			return nil, fmt.Errorf("coord: axis %q has a non-finite value at %d", name, i)
		}
		if desc && values[i] >= values[i-1] || !desc && values[i] <= values[i-1] {
			return nil, fmt.Errorf("coord: axis %q is not strictly monotone at %d", name, i)
		}
	}
	return &Axis{Name: name, Values: values, desc: desc}, nil
}

// FromNetCDF builds an axis from a one-dimensional coordinate variable —
// the NetCDF convention where a dimension's coordinates live in a variable
// of the same name.
func FromNetCDF(f *netcdf.File, varName string) (*Axis, error) {
	v, err := f.Var(varName)
	if err != nil {
		return nil, err
	}
	if len(v.Dims) != 1 {
		return nil, fmt.Errorf("coord: %q is not a one-dimensional coordinate variable", varName)
	}
	slab, err := f.ReadAll(varName)
	if err != nil {
		return nil, err
	}
	if slab.Type == netcdf.Char {
		return nil, fmt.Errorf("coord: %q is a char variable", varName)
	}
	return NewAxis(varName, slab.Values)
}

// Len returns the number of coordinate points.
func (a *Axis) Len() int { return len(a.Values) }

// Index returns the index whose coordinate is nearest to x (ties toward
// the smaller index).
func (a *Axis) Index(x float64) int {
	n := len(a.Values)
	// Binary search for the first value ≥ x in ascending order (or ≤ x in
	// descending order).
	i := sort.Search(n, func(i int) bool {
		if a.desc {
			return a.Values[i] <= x
		}
		return a.Values[i] >= x
	})
	switch {
	case i == 0:
		return 0
	case i == n:
		return n - 1
	}
	if math.Abs(a.Values[i]-x) < math.Abs(a.Values[i-1]-x) {
		return i
	}
	return i - 1
}

// Coord returns the coordinate at index i.
func (a *Axis) Coord(i int) (float64, error) {
	if i < 0 || i >= len(a.Values) {
		return 0, fmt.Errorf("coord: index %d out of range for axis %q (length %d)", i, a.Name, len(a.Values))
	}
	return a.Values[i], nil
}

// Range returns the inclusive index interval covering the coordinate
// interval [lo, hi] (in coordinate order; lo and hi may be given in either
// order). The interval is empty — returned as ok=false — when no
// coordinate falls inside it.
func (a *Axis) Range(lo, hi float64) (start, end int, ok bool) {
	if lo > hi {
		lo, hi = hi, lo
	}
	start, end = -1, -1
	for i, v := range a.Values {
		if v >= lo && v <= hi {
			if start == -1 {
				start = i
			}
			end = i
		}
	}
	if start == -1 {
		return 0, 0, false
	}
	if start > end {
		start, end = end, start
	}
	return start, end, true
}

// Register installs the axis's three primitives into the environment.
func Register(e *env.Env, a *Axis) error {
	idxName := a.Name + "_index"
	if err := e.RegisterPrimitive(idxName, func(v object.Value) (object.Value, error) {
		x, err := v.AsReal()
		if err != nil {
			return object.Value{}, fmt.Errorf("%s: %w", idxName, err)
		}
		return object.Nat(int64(a.Index(x))), nil
	}, types.MustParse("real -> nat")); err != nil {
		return err
	}

	coordName := a.Name + "_coord"
	if err := e.RegisterPrimitive(coordName, func(v object.Value) (object.Value, error) {
		i, err := v.AsNat()
		if err != nil {
			return object.Value{}, fmt.Errorf("%s: %w", coordName, err)
		}
		c, err := a.Coord(int(i))
		if err != nil {
			return object.Bottom(err.Error()), nil
		}
		return object.Real(c), nil
	}, types.MustParse("nat -> real")); err != nil {
		return err
	}

	rangeName := a.Name + "_range"
	return e.RegisterPrimitive(rangeName, func(v object.Value) (object.Value, error) {
		if v.Kind != object.KTuple || len(v.Elems) != 2 {
			return object.Value{}, fmt.Errorf("%s: expected a (lo, hi) pair", rangeName)
		}
		lo, err := v.Elems[0].AsReal()
		if err != nil {
			return object.Value{}, fmt.Errorf("%s: %w", rangeName, err)
		}
		hi, err := v.Elems[1].AsReal()
		if err != nil {
			return object.Value{}, fmt.Errorf("%s: %w", rangeName, err)
		}
		start, end, ok := a.Range(lo, hi)
		if !ok {
			return object.Bottom(fmt.Sprintf("%s: no coordinates in [%g, %g]", rangeName, lo, hi)), nil
		}
		return object.Tuple(object.Nat(int64(start)), object.Nat(int64(end))), nil
	}, types.MustParse("real * real -> nat * nat"))
}
