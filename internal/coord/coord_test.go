package coord

import (
	"path/filepath"
	"testing"

	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/types"
)

func TestNewAxisValidation(t *testing.T) {
	if _, err := NewAxis("x", nil); err == nil {
		t.Error("empty axis accepted")
	}
	if _, err := NewAxis("x", []float64{1, 2, 2}); err == nil {
		t.Error("non-monotone axis accepted")
	}
	if _, err := NewAxis("x", []float64{1, 2, 1.5}); err == nil {
		t.Error("non-monotone axis accepted")
	}
	if _, err := NewAxis("x", []float64{3, 2, 1}); err != nil {
		t.Errorf("descending axis rejected: %v", err)
	}
	if _, err := NewAxis("x", []float64{42}); err != nil {
		t.Errorf("single-point axis rejected: %v", err)
	}
}

func TestIndexNearest(t *testing.T) {
	a, err := NewAxis("lat", []float64{-90, -45, 0, 45, 90})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want int
	}{
		{-90, 0}, {-100, 0}, {-70, 0}, {-67, 1}, {-1, 2}, {0, 2}, {1, 2},
		{40, 3}, {44, 3}, {89, 4}, {90, 4}, {200, 4}, {22.4, 2}, {22.6, 3},
	}
	for _, tt := range tests {
		if got := a.Index(tt.x); got != tt.want {
			t.Errorf("Index(%g) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestIndexDescending(t *testing.T) {
	// Latitude axes are often stored north-to-south.
	a, err := NewAxis("lat", []float64{90, 45, 0, -45, -90})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Index(90); got != 0 {
		t.Errorf("Index(90) = %d", got)
	}
	if got := a.Index(-90); got != 4 {
		t.Errorf("Index(-90) = %d", got)
	}
	if got := a.Index(40); got != 1 {
		t.Errorf("Index(40) = %d", got)
	}
	if got := a.Index(-50); got != 3 {
		t.Errorf("Index(-50) = %d", got)
	}
}

func TestCoordAndRange(t *testing.T) {
	a, err := NewAxis("lon", []float64{0, 30, 60, 90, 120})
	if err != nil {
		t.Fatal(err)
	}
	if c, err := a.Coord(2); err != nil || c != 60 {
		t.Errorf("Coord(2) = %v, %v", c, err)
	}
	if _, err := a.Coord(9); err == nil {
		t.Error("out-of-range Coord accepted")
	}
	start, end, ok := a.Range(25, 95)
	if !ok || start != 1 || end != 3 {
		t.Errorf("Range(25, 95) = %d, %d, %v", start, end, ok)
	}
	// Reversed bounds are normalized.
	start, end, ok = a.Range(95, 25)
	if !ok || start != 1 || end != 3 {
		t.Errorf("Range(95, 25) = %d, %d, %v", start, end, ok)
	}
	if _, _, ok := a.Range(31, 59); ok {
		t.Error("empty range reported non-empty")
	}
}

func TestFromNetCDF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.nc")
	b := netcdf.NewBuilder()
	la, _ := b.AddDim("lat", 5)
	if err := b.AddVar("lat", netcdf.Double, []int{la}, nil,
		[]float64{-60, -30, 0, 30, 60}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddVar("temp", netcdf.Double, []int{la}, nil,
		[]float64{10, 18, 27, 19, 8}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := netcdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	axis, err := FromNetCDF(f, "lat")
	if err != nil {
		t.Fatal(err)
	}
	if axis.Len() != 5 || axis.Index(29) != 3 {
		t.Errorf("axis = %+v", axis)
	}
	if _, err := FromNetCDF(f, "nope"); err == nil {
		t.Error("missing variable accepted")
	}
}

// TestRegisteredPrimitives uses the axis from AQL, replacing the paper's
// hand-written lat_index macro with a data-derived one.
func TestRegisteredPrimitives(t *testing.T) {
	s, err := repl.New()
	if err != nil {
		t.Fatal(err)
	}
	axis, err := NewAxis("lat", []float64{-60, -30, 0, 30, 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(s.Env, axis); err != nil {
		t.Fatal(err)
	}

	v, _, err := s.Query(`lat_index!40.7`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.Nat(3)) {
		t.Errorf("lat_index!40.7 = %s", v)
	}
	v, _, err = s.Query(`lat_coord!(lat_index!40.7)`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.Real(30)) {
		t.Errorf("round trip = %s", v)
	}
	v, _, err = s.Query(`lat_range!(0.0 - 40.0, 40.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.Tuple(object.Nat(1), object.Nat(3))) {
		t.Errorf("lat_range = %s", v)
	}
	// Coordinate-driven subslab extraction in pure AQL.
	s.Env.SetVal("T", object.RealVector(10, 18, 27, 19, 8),
		mustType(t, "[[real]]"))
	v, _, err = s.Query(`let val (\lo, \hi) = lat_range!(0.0 - 40.0, 40.0)
	                     in subseq!(T, lo, hi) end`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.RealVector(18, 27, 19)) {
		t.Errorf("coordinate slab = %s", v)
	}
	// Out-of-axis range is ⊥.
	v, _, err = s.Query(`lat_range!(200.0, 300.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsBottom() {
		t.Errorf("empty range = %s, want bottom", v)
	}
}

func mustType(t *testing.T, src string) *types.Type {
	t.Helper()
	typ, err := types.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return typ
}
