package object

import (
	"context"
	"fmt"
)

// Array returns a k-dimensional array object with the given shape and
// row-major data. len(data) must equal the product of the shape; shape must
// have at least one dimension and no negative lengths. The slices are
// retained (not copied); callers must not mutate them afterwards.
func Array(shape []int, data []Value) (Value, error) {
	if len(shape) == 0 {
		return Value{}, fmt.Errorf("object: array must have dimensionality >= 1")
	}
	size := 1
	for _, n := range shape {
		if n < 0 {
			return Value{}, fmt.Errorf("object: negative dimension length %d", n)
		}
		size *= n
	}
	if size != len(data) {
		return Value{}, fmt.Errorf("object: shape %v requires %d values, got %d", shape, size, len(data))
	}
	return Value{Kind: KArray, Shape: shape, Data: data}, nil
}

// MustArray is Array that panics on error; for tests and static tables.
func MustArray(shape []int, data []Value) Value {
	v, err := Array(shape, data)
	if err != nil {
		panic(err)
	}
	return v
}

// Vector returns a one-dimensional array of the given values.
func Vector(data ...Value) Value { return Value{Kind: KArray, Shape: []int{len(data)}, Data: data} }

// NatVector returns a one-dimensional array of naturals; a convenience for
// tests and drivers.
func NatVector(ns ...int64) Value {
	data := make([]Value, len(ns))
	for i, n := range ns {
		data[i] = Nat(n)
	}
	return Vector(data...)
}

// RealVector returns a one-dimensional array of reals.
func RealVector(fs ...float64) Value {
	data := make([]Value, len(fs))
	for i, f := range fs {
		data[i] = Real(f)
	}
	return Vector(data...)
}

// Dims returns the number of dimensions of an array value.
func (v Value) Dims() int { return len(v.Shape) }

// Size returns the total number of elements of an array value.
func (v Value) Size() int {
	if v.lazy != nil {
		return v.lazy.size
	}
	return len(v.Data)
}

// flatten converts a multi-index to a row-major offset, or reports an
// out-of-bounds error. idx must have len == len(shape).
func flatten(idx, shape []int) (int, bool) {
	off := 0
	for d, i := range idx {
		if i < 0 || i >= shape[d] {
			return 0, false
		}
		off = off*shape[d] + i
	}
	return off, true
}

// unflatten converts a row-major offset to a multi-index.
func unflatten(off int, shape []int) []int {
	idx := make([]int, len(shape))
	for d := len(shape) - 1; d >= 0; d-- {
		if shape[d] > 0 {
			idx[d] = off % shape[d]
			off /= shape[d]
		}
	}
	return idx
}

// Sub subscripts into an array: a[idx]. Out-of-bounds subscripts return ⊥,
// matching the paper's semantics (e1[e2] "is undefined otherwise").
// Subscripting a non-array is a kind error.
func Sub(a Value, idx []int) (Value, error) { return SubCtx(nil, a, idx) }

// SubCtx is Sub with a context bounding lazy-array cell fetches.
func SubCtx(ctx context.Context, a Value, idx []int) (Value, error) {
	if a.Kind != KArray {
		return Value{}, kindError("subscript", a, KArray)
	}
	if len(idx) != len(a.Shape) {
		return Value{}, fmt.Errorf("object: subscript arity %d does not match dimensionality %d", len(idx), len(a.Shape))
	}
	off, ok := flatten(idx, a.Shape)
	if !ok {
		return Bottom(fmt.Sprintf("index %v out of bounds for shape %v", idx, a.Shape)), nil
	}
	return a.CellAtCtx(ctx, off)
}

// SubValue subscripts with a runtime index value: a nat for one-dimensional
// arrays, a tuple of nats for k-dimensional ones.
func SubValue(a, index Value) (Value, error) { return SubValueCtx(nil, a, index) }

// SubValueCtx is SubValue with a context bounding lazy-array cell fetches;
// the engines pass the query context so a cancelled request aborts an
// in-flight tile fetch.
func SubValueCtx(ctx context.Context, a, index Value) (Value, error) {
	if a.Kind != KArray {
		return Value{}, kindError("subscript", a, KArray)
	}
	idx, err := IndexOf(index, len(a.Shape))
	if err != nil {
		return Value{}, err
	}
	return SubCtx(ctx, a, idx)
}

// IndexOf converts a runtime index value (nat or tuple of nats) into a
// multi-index of the given arity.
func IndexOf(index Value, k int) ([]int, error) {
	if k == 1 {
		n, err := index.AsNat()
		if err != nil {
			return nil, fmt.Errorf("object: 1-dimensional subscript: %w", err)
		}
		return []int{int(n)}, nil
	}
	if index.Kind != KTuple || len(index.Elems) != k {
		return nil, fmt.Errorf("object: %d-dimensional subscript requires a %d-tuple of nats, got %s", k, k, index.Kind)
	}
	idx := make([]int, k)
	for d, e := range index.Elems {
		n, err := e.AsNat()
		if err != nil {
			return nil, fmt.Errorf("object: subscript component %d: %w", d+1, err)
		}
		idx[d] = int(n)
	}
	return idx, nil
}

// DimValue returns dim_k(a): the length for one-dimensional arrays, the
// k-tuple of lengths otherwise.
func DimValue(a Value) (Value, error) {
	if a.Kind != KArray {
		return Value{}, kindError("dim", a, KArray)
	}
	if len(a.Shape) == 1 {
		return Nat(int64(a.Shape[0])), nil
	}
	elems := make([]Value, len(a.Shape))
	for d, n := range a.Shape {
		elems[d] = Nat(int64(n))
	}
	return Tuple(elems...), nil
}

// Tabulate builds the k-dimensional array [[ f(i1,...,ik) | i1 < shape[0],
// ..., ik < shape[k-1] ]]. If f returns an error, tabulation stops and the
// error is returned. f receives the multi-index; it must not retain it.
func Tabulate(shape []int, f func(idx []int) (Value, error)) (Value, error) {
	size := 1
	for _, n := range shape {
		if n < 0 {
			return Value{}, fmt.Errorf("object: negative dimension length %d", n)
		}
		if n > 0 && size > int(^uint(0)>>1)/n {
			return Value{}, fmt.Errorf("object: tabulation shape %v overflows", shape)
		}
		size *= n
	}
	data := make([]Value, size)
	idx := make([]int, len(shape))
	for off := 0; off < size; off++ {
		v, err := f(idx)
		if err != nil {
			return Value{}, err
		}
		data[off] = v
		// Advance the multi-index in row-major order.
		for d := len(shape) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return Value{Kind: KArray, Shape: shape, Data: data}, nil
}

// Graph returns graph_k(a) = { (i, a[i]) | i ∈ dom(a) } as a canonical set
// of (index, value) pairs, where the index is a nat (k = 1) or a nat tuple.
func Graph(a Value) (Value, error) {
	if a.Kind != KArray {
		return Value{}, kindError("graph", a, KArray)
	}
	cells, err := a.Cells()
	if err != nil {
		return Value{}, err
	}
	elems := make([]Value, len(cells))
	for off, v := range cells {
		idx := unflatten(off, a.Shape)
		ival := indexValue(idx)
		elems[off] = Tuple(ival, v)
	}
	return Set(elems...), nil
}

// indexValue converts a multi-index to its runtime value (nat or nat tuple).
func indexValue(idx []int) Value {
	if len(idx) == 1 {
		return Nat(int64(idx[0]))
	}
	elems := make([]Value, len(idx))
	for d, i := range idx {
		elems[d] = Nat(int64(i))
	}
	return Tuple(elems...)
}

// Index implements the index_k construct of figure 1: it converts a set of
// (key, value) pairs with keys in N^k into the k-dimensional array of sets
// whose j-th dimension runs to the maximum j-th key component, grouping all
// values with equal keys and filling holes with {}.
//
//	index({(1,"a"), (3,"b"), (1,"c")}) = [[{}, {"a","c"}, {}, {"b"}]]
//
// The input need not be the graph of a function; that is the point of the
// construct (section 2). Returns ⊥-free output or a kind error if the input
// is not a set of pairs with natural-number keys.
func Index(s Value, k int) (Value, error) { return IndexChecked(s, k, nil) }

// IndexChecked is Index with an allocation guard: when guard is non-nil it
// is called with the cell count of the result array BEFORE the array is
// allocated, and a guard error aborts the construction. The evaluator uses
// this to enforce cell budgets on index_k, whose result size is data-driven
// (a single pair {(10^9, x)} demands a billion-cell array).
func IndexChecked(s Value, k int, guard func(cells int64) error) (Value, error) {
	if s.Kind != KSet {
		return Value{}, kindError("index", s, KSet)
	}
	if k < 1 {
		return Value{}, fmt.Errorf("object: index dimensionality %d < 1", k)
	}
	// First pass: find the maximal key in each dimension.
	shape := make([]int, k)
	keys := make([][]int, len(s.Elems))
	for n, pair := range s.Elems {
		if pair.Kind != KTuple || len(pair.Elems) != 2 {
			return Value{}, fmt.Errorf("object: index element %d is not a (key, value) pair", n)
		}
		idx, err := IndexOf(pair.Elems[0], k)
		if err != nil {
			return Value{}, fmt.Errorf("object: index element %d: %w", n, err)
		}
		keys[n] = idx
		for d, i := range idx {
			if i+1 > shape[d] {
				shape[d] = i + 1
			}
		}
	}
	size := 1
	for _, n := range shape {
		if n > 0 && size > int(^uint(0)>>1)/n {
			return Value{}, fmt.Errorf("object: index shape %v overflows", shape)
		}
		size *= n
	}
	if guard != nil {
		if err := guard(int64(size)); err != nil {
			return Value{}, err
		}
	}
	// Second pass: group values by flattened key. The input set is
	// canonical, so the groups come out sorted and deduplicated for free.
	groups := make([][]Value, size)
	for n, pair := range s.Elems {
		off, _ := flatten(keys[n], shape)
		groups[off] = append(groups[off], pair.Elems[1])
	}
	data := make([]Value, size)
	for off, g := range groups {
		data[off] = SetFromSorted(g)
	}
	return Value{Kind: KArray, Shape: shape, Data: data}, nil
}

// Append returns the concatenation a @ b of two one-dimensional arrays —
// the monoid operation of section 3 of the paper.
func Append(a, b Value) (Value, error) {
	if a.Kind != KArray || b.Kind != KArray {
		return Value{}, kindError2("append", a, b, KArray)
	}
	if len(a.Shape) != 1 || len(b.Shape) != 1 {
		return Value{}, fmt.Errorf("object: append requires one-dimensional arrays, got %d and %d dims", len(a.Shape), len(b.Shape))
	}
	ac, err := a.Cells()
	if err != nil {
		return Value{}, err
	}
	bc, err := b.Cells()
	if err != nil {
		return Value{}, err
	}
	data := make([]Value, 0, len(ac)+len(bc))
	data = append(data, ac...)
	data = append(data, bc...)
	return Vector(data...), nil
}
