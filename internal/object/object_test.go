package object

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if !Bool(true).B || Bool(false).B {
		t.Error("Bool payload wrong")
	}
	if Nat(5).N != 5 {
		t.Error("Nat payload wrong")
	}
	if Real(2.5).R != 2.5 {
		t.Error("Real payload wrong")
	}
	if String_("x").S != "x" {
		t.Error("String payload wrong")
	}
	if Tuple(Nat(1)).Kind != KNat {
		t.Error("1-ary tuple should collapse to its component")
	}
	if len(Tuple().Elems) != 0 || Tuple().Kind != KTuple {
		t.Error("0-ary tuple should be unit")
	}
}

func TestNatPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nat(-1) should panic")
		}
	}()
	Nat(-1)
}

func TestBottom(t *testing.T) {
	b := Bottom("division by zero")
	if !b.IsBottom() {
		t.Error("IsBottom false")
	}
	if !Equal(b, Bottom("other message")) {
		t.Error("all bottoms should be equal as values")
	}
	if Nat(0).IsBottom() {
		t.Error("Nat(0) reported bottom")
	}
}

func TestSetCanonicalization(t *testing.T) {
	s := Set(Nat(3), Nat(1), Nat(3), Nat(2), Nat(1))
	if len(s.Elems) != 3 {
		t.Fatalf("set has %d elements, want 3", len(s.Elems))
	}
	for i, want := range []int64{1, 2, 3} {
		if s.Elems[i].N != want {
			t.Errorf("element %d = %d, want %d", i, s.Elems[i].N, want)
		}
	}
}

func TestSetEqualityIsExtensional(t *testing.T) {
	a := Set(Nat(1), Nat(2))
	b := Set(Nat(2), Nat(1), Nat(2))
	if !Equal(a, b) {
		t.Error("sets with same extension reported unequal")
	}
}

func TestBagPreservesMultiplicity(t *testing.T) {
	b := Bag(Nat(2), Nat(1), Nat(2))
	if len(b.Elems) != 3 {
		t.Fatalf("bag has %d elements, want 3", len(b.Elems))
	}
	if !Equal(b, Bag(Nat(1), Nat(2), Nat(2))) {
		t.Error("bags with same multiset reported unequal")
	}
	if Equal(b, Bag(Nat(1), Nat(2))) {
		t.Error("bags with different multiplicities reported equal")
	}
}

func TestUnion(t *testing.T) {
	a := Set(Nat(1), Nat(3))
	b := Set(Nat(2), Nat(3), Nat(4))
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(u, Set(Nat(1), Nat(2), Nat(3), Nat(4))) {
		t.Errorf("union = %s", u)
	}
	if _, err := Union(a, Nat(1)); err == nil {
		t.Error("union with non-set should error")
	}
}

func TestBagUnionAddsMultiplicities(t *testing.T) {
	a := Bag(Nat(1), Nat(2))
	b := Bag(Nat(2), Nat(3))
	u, err := BagUnion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(u, Bag(Nat(1), Nat(2), Nat(2), Nat(3))) {
		t.Errorf("bag union = %s", u)
	}
}

func TestMember(t *testing.T) {
	s := Set(Nat(1), Nat(5), Nat(9))
	for _, tc := range []struct {
		n    int64
		want bool
	}{{1, true}, {5, true}, {9, true}, {0, false}, {4, false}, {10, false}} {
		got, err := Member(Nat(tc.n), s)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Member(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	if got, _ := Member(Nat(1), EmptySet); got {
		t.Error("membership in empty set")
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]Value, 200)
	for i := range vals {
		vals[i] = randomValue(rng, 3)
	}
	for i := range vals {
		for j := range vals {
			cij, cji := Compare(vals[i], vals[j]), Compare(vals[j], vals[i])
			if cij != -cji {
				t.Fatalf("antisymmetry violated: %s vs %s: %d, %d", vals[i], vals[j], cij, cji)
			}
			if i == j && cij != 0 {
				t.Fatalf("reflexivity violated for %s", vals[i])
			}
		}
	}
	// Transitivity on triples.
	for n := 0; n < 2000; n++ {
		a, b, c := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %s <= %s <= %s but not a <= c", a, b, c)
		}
	}
}

// randomValue builds a random object of bounded depth for property tests.
func randomValue(rng *rand.Rand, depth int) Value {
	kinds := 5
	if depth > 0 {
		kinds = 8
	}
	switch rng.Intn(kinds) {
	case 0:
		return Bool(rng.Intn(2) == 0)
	case 1:
		return Nat(int64(rng.Intn(10)))
	case 2:
		return Real(float64(rng.Intn(100)) / 4)
	case 3:
		return String_(string(rune('a' + rng.Intn(4))))
	case 4:
		return Bottom("")
	case 5:
		n := rng.Intn(3)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return Set(elems...)
	case 6:
		return Tuple(randomValue(rng, depth-1), randomValue(rng, depth-1))
	default:
		n := rng.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return Vector(elems...)
	}
}

func TestArrayConstruction(t *testing.T) {
	a, err := Array([]int{2, 3}, []Value{Nat(0), Nat(1), Nat(2), Nat(3), Nat(4), Nat(5)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dims() != 2 || a.Size() != 6 {
		t.Errorf("dims=%d size=%d", a.Dims(), a.Size())
	}
	if _, err := Array([]int{2, 2}, []Value{Nat(0)}); err == nil {
		t.Error("shape/data mismatch should error")
	}
	if _, err := Array(nil, nil); err == nil {
		t.Error("0-dimensional array should error")
	}
	if _, err := Array([]int{-1}, nil); err == nil {
		t.Error("negative dimension should error")
	}
}

func TestSubscript(t *testing.T) {
	a := MustArray([]int{2, 3}, []Value{Nat(0), Nat(1), Nat(2), Nat(3), Nat(4), Nat(5)})
	// Row-major: a[i,j] = 3i + j.
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v, err := Sub(a, []int{i, j})
			if err != nil {
				t.Fatal(err)
			}
			if v.N != int64(3*i+j) {
				t.Errorf("a[%d,%d] = %d, want %d", i, j, v.N, 3*i+j)
			}
		}
	}
	oob, err := Sub(a, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !oob.IsBottom() {
		t.Error("out-of-bounds subscript should yield bottom")
	}
	if _, err := Sub(a, []int{0}); err == nil {
		t.Error("arity mismatch should be an error, not bottom")
	}
}

func TestSubValue(t *testing.T) {
	v1 := NatVector(10, 20, 30)
	got, err := SubValue(v1, Nat(2))
	if err != nil || got.N != 30 {
		t.Errorf("v1[2] = %v, %v", got, err)
	}
	a := MustArray([]int{2, 2}, []Value{Nat(1), Nat(2), Nat(3), Nat(4)})
	got, err = SubValue(a, Tuple(Nat(1), Nat(0)))
	if err != nil || got.N != 3 {
		t.Errorf("a[1,0] = %v, %v", got, err)
	}
	if _, err := SubValue(a, Nat(0)); err == nil {
		t.Error("nat subscript into 2-d array should error")
	}
}

func TestDimValue(t *testing.T) {
	d, err := DimValue(NatVector(1, 2, 3))
	if err != nil || d.N != 3 {
		t.Errorf("len = %v, %v", d, err)
	}
	a := MustArray([]int{2, 5}, make([]Value, 10))
	d, err = DimValue(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, Tuple(Nat(2), Nat(5))) {
		t.Errorf("dim = %s", d)
	}
}

func TestTabulate(t *testing.T) {
	a, err := Tabulate([]int{3, 2}, func(idx []int) (Value, error) {
		return Nat(int64(10*idx[0] + idx[1])), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := MustArray([]int{3, 2}, []Value{Nat(0), Nat(1), Nat(10), Nat(11), Nat(20), Nat(21)})
	if !Equal(a, want) {
		t.Errorf("tabulate = %s, want %s", a, want)
	}
	empty, err := Tabulate([]int{0, 5}, func([]int) (Value, error) { return Nat(0), nil })
	if err != nil || empty.Size() != 0 {
		t.Errorf("empty tabulation: %v, %v", empty, err)
	}
}

func TestGraph(t *testing.T) {
	g, err := Graph(NatVector(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := Set(Tuple(Nat(0), Nat(7)), Tuple(Nat(1), Nat(8)))
	if !Equal(g, want) {
		t.Errorf("graph = %s, want %s", g, want)
	}
	g2, err := Graph(MustArray([]int{1, 2}, []Value{Nat(5), Nat(6)}))
	if err != nil {
		t.Fatal(err)
	}
	want2 := Set(Tuple(Tuple(Nat(0), Nat(0)), Nat(5)), Tuple(Tuple(Nat(0), Nat(1)), Nat(6)))
	if !Equal(g2, want2) {
		t.Errorf("graph2 = %s, want %s", g2, want2)
	}
}

// TestIndexPaperExample checks the example from section 2:
// index({(1,"a"), (3,"b"), (1,"c")}) = [[{}, {"a","c"}, {}, {"b"}]].
func TestIndexPaperExample(t *testing.T) {
	s := Set(
		Tuple(Nat(1), String_("a")),
		Tuple(Nat(3), String_("b")),
		Tuple(Nat(1), String_("c")),
	)
	got, err := Index(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector(EmptySet, Set(String_("a"), String_("c")), EmptySet, Set(String_("b")))
	if !Equal(got, want) {
		t.Errorf("index = %s, want %s", got, want)
	}
}

func TestIndexMultiDim(t *testing.T) {
	s := Set(
		Tuple(Tuple(Nat(0), Nat(1)), Nat(10)),
		Tuple(Tuple(Nat(1), Nat(0)), Nat(20)),
	)
	got, err := Index(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims() != 2 || got.Shape[0] != 2 || got.Shape[1] != 2 {
		t.Fatalf("shape = %v, want [2 2]", got.Shape)
	}
	at := func(i, j int) Value {
		v, err := Sub(got, []int{i, j})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !Equal(at(0, 1), Set(Nat(10))) || !Equal(at(1, 0), Set(Nat(20))) {
		t.Error("values misplaced")
	}
	if !Equal(at(0, 0), EmptySet) || !Equal(at(1, 1), EmptySet) {
		t.Error("holes not filled with {}")
	}
}

func TestIndexEmpty(t *testing.T) {
	got, err := Index(EmptySet, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 {
		t.Errorf("index({}) has %d elements", got.Size())
	}
}

func TestAppend(t *testing.T) {
	a, err := Append(NatVector(1, 2), NatVector(3))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, NatVector(1, 2, 3)) {
		t.Errorf("append = %s", a)
	}
	if _, err := Append(MustArray([]int{1, 1}, []Value{Nat(0)}), NatVector(1)); err == nil {
		t.Error("append of 2-d array should error")
	}
}

// TestAppendMonoidLaws checks the monoid laws of section 3 (empty is a unit,
// append is associative) via testing/quick.
func TestAppendMonoidLaws(t *testing.T) {
	empty := Vector()
	gen := func(seed int64) Value {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		data := make([]Value, n)
		for i := range data {
			data[i] = Nat(int64(rng.Intn(100)))
		}
		return Vector(data...)
	}
	unit := func(seed int64) bool {
		a := gen(seed)
		l, _ := Append(empty, a)
		r, _ := Append(a, empty)
		return Equal(l, a) && Equal(r, a)
	}
	assoc := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		ab, _ := Append(a, b)
		abc1, _ := Append(ab, c)
		bc, _ := Append(b, c)
		abc2, _ := Append(a, bc)
		return Equal(abc1, abc2)
	}
	if err := quick.Check(unit, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Bool(true), "true"},
		{Nat(42), "42"},
		{Real(2.5), "2.5"},
		{Real(3), "3.0"},
		{String_("hi"), `"hi"`},
		{Tuple(Nat(1), Bool(false)), "(1, false)"},
		{Set(Nat(2), Nat(1)), "{1, 2}"},
		{Bag(Nat(1), Nat(1)), "{|1, 1|}"},
		{NatVector(1, 2, 3), "[[1, 2, 3]]"},
		{MustArray([]int{2, 2}, []Value{Nat(1), Nat(2), Nat(3), Nat(4)}), "[[2, 2; 1, 2, 3, 4]]"},
		{Bottom(""), "_|_"},
		{Base("temp", "hot"), `temp#"hot"`},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPretty(t *testing.T) {
	months := NatVector(0, 31, 28, 31)
	got := months.Pretty(3)
	want := "[[(0):0, (1):31, (2):28, ...]]"
	if got != want {
		t.Errorf("Pretty = %q, want %q", got, want)
	}
	a := MustArray([]int{2, 2}, []Value{Nat(1), Nat(2), Nat(3), Nat(4)})
	got = a.Pretty(0)
	want = "[[(0,0):1, (0,1):2, (1,0):3, (1,1):4]]"
	if got != want {
		t.Errorf("Pretty 2d = %q, want %q", got, want)
	}
}

func TestAccessors(t *testing.T) {
	if _, err := Nat(1).AsBool(); err == nil {
		t.Error("AsBool on nat should error")
	}
	if f, err := Nat(3).AsReal(); err != nil || f != 3 {
		t.Error("nat should promote to real")
	}
	p, err := Tuple(Nat(1), Nat(2)).Proj(1)
	if err != nil || p.N != 2 {
		t.Errorf("Proj = %v, %v", p, err)
	}
	if _, err := Tuple(Nat(1), Nat(2)).Proj(5); err == nil {
		t.Error("out-of-range projection should error")
	}
	if _, err := Nat(0).Proj(0); err == nil {
		t.Error("projection from non-tuple should error")
	}
}

func TestCompareFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("comparing functions should panic")
		}
	}()
	f := Func(func(v Value) (Value, error) { return v, nil })
	Compare(f, f)
}

func TestNumericCrossKindCompare(t *testing.T) {
	if Compare(Nat(2), Real(2.5)) != -1 {
		t.Error("2 < 2.5 expected")
	}
	if Compare(Real(2.0), Nat(2)) != 0 {
		t.Error("2.0 == 2 expected")
	}
}
