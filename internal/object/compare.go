package object

import "fmt"

// Compare implements the total linear order <=_t on complex objects that the
// paper assumes on every object type (section 2; it cites [21] for the fact
// that orders on base types lift to all complex-object types). It returns
// -1, 0, or +1.
//
// Well-typed programs only ever compare values of the same type; across
// kinds, Compare falls back to ordering by kind tag so that it remains a
// total order on all values (useful for canonicalizing heterogeneous
// debugging data and for the property tests).
//
// ⊥ is ordered below every proper value. Function values are not orderable;
// comparing them panics, matching the type system's refusal to order
// function types.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		// Numeric cross-kind comparison: nat vs real compares by magnitude,
		// supporting the surface language's numeric overloading.
		if (a.Kind == KNat && b.Kind == KReal) || (a.Kind == KReal && b.Kind == KNat) {
			af, _ := a.AsReal()
			bf, _ := b.AsReal()
			return cmpFloat(af, bf)
		}
		return cmpInt(int(a.Kind), int(b.Kind))
	}
	switch a.Kind {
	case KBottom:
		return 0
	case KBool:
		return cmpBool(a.B, b.B)
	case KNat:
		return cmpInt64(a.N, b.N)
	case KReal:
		return cmpFloat(a.R, b.R)
	case KString:
		return cmpString(a.S, b.S)
	case KBase:
		if c := cmpString(a.Base, b.Base); c != 0 {
			return c
		}
		return cmpString(a.S, b.S)
	case KTuple, KSet, KBag:
		// Tuples compare lexicographically. Sets and bags are canonical
		// (sorted), so lexicographic comparison of the element slices is a
		// linear order on them as well.
		return cmpSlices(a.Elems, b.Elems)
	case KArray:
		if c := cmpInts(a.Shape, b.Shape); c != 0 {
			return c
		}
		return cmpSlices(a.mustCells(), b.mustCells())
	case KFunc:
		panic("object.Compare: function values are not ordered")
	}
	panic(fmt.Sprintf("object.Compare: bad kind %d", a.Kind))
}

// Equal reports structural equality of two complex objects: Compare == 0.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInts(a, b []int) int {
	if c := cmpInt(len(a), len(b)); c != 0 {
		return c
	}
	for i := range a {
		if c := cmpInt(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func cmpSlices(a, b []Value) int {
	if c := cmpInt(len(a), len(b)); c != 0 {
		return c
	}
	for i := range a {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}
