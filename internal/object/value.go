// Package object implements the complex-object library of the AQL system
// (Libkin, Machlin, Wong, SIGMOD 1996, section 4.1): the runtime values that
// queries evaluate to.
//
// A complex object is a boolean, a natural number, a real, a string, a value
// of an uninterpreted base type, a k-tuple of complex objects, a finite set
// of complex objects, a finite bag of complex objects (used by the
// expressiveness constructions of section 6), a k-dimensional array of
// complex objects, or the error value ⊥. Function values also appear at
// runtime (lambda closures and registered external primitives — the paper's
// CO.Funct), but they are not objects: they cannot be stored in collections
// whose contents must be linearly ordered.
//
// Sets are kept canonical — sorted by the total linear order Compare and
// deduplicated — so set equality is structural equality and the order-based
// constructs of section 6 (rank, ⋃_r) are well defined. Bags are kept sorted
// with multiplicities preserved. Arrays are dense and row-major.
package object

import (
	"fmt"
	"math"
	"strings"
)

// Kind discriminates the run-time alternatives of a Value.
type Kind int

// The kinds of runtime values. The zero kind is KInvalid, so that the zero
// Value is not mistaken for any legal object (in particular not for ⊥).
const (
	KInvalid Kind = iota // zero value of Value; never a legal object
	KBottom              // ⊥, the error value
	KBool
	KNat
	KReal
	KString
	KBase  // value of an uninterpreted base type: a (type name, literal) pair
	KTuple // k-tuple, k >= 2 (or unit when len(Elems) == 0)
	KSet   // canonical: sorted, deduplicated
	KBag   // sorted, duplicates preserved
	KArray // dense row-major k-dimensional array
	KFunc  // closure or external primitive; not an object type
)

// String returns the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case KInvalid:
		return "invalid"
	case KBottom:
		return "bottom"
	case KBool:
		return "bool"
	case KNat:
		return "nat"
	case KReal:
		return "real"
	case KString:
		return "string"
	case KBase:
		return "base"
	case KTuple:
		return "tuple"
	case KSet:
		return "set"
	case KBag:
		return "bag"
	case KArray:
		return "array"
	case KFunc:
		return "function"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Value is a runtime complex object. Values are immutable by convention:
// no code in this module mutates a Value after construction, so values may
// be shared freely (including across goroutines).
type Value struct {
	Kind  Kind
	B     bool                       // KBool
	N     int64                      // KNat: always >= 0
	R     float64                    // KReal
	S     string                     // KString; KBase: the literal; KBottom: optional diagnostic
	Base  string                     // KBase: the base-type name
	Elems []Value                    // KTuple components; KSet/KBag elements (canonical order)
	Shape []int                      // KArray: dimension lengths, len(Shape) == k >= 1
	Data  []Value                    // KArray: row-major values, len == product(Shape)
	Fn    func(Value) (Value, error) // KFunc

	// lazy, when non-nil, marks a KArray whose cells live in a backing
	// store (tile cache) instead of Data. Access cells through CellAt /
	// Cells / Materialize, never Data directly. See lazy.go.
	lazy *lazyState
}

// Bottom is the error value ⊥. The message is carried for diagnostics only;
// all bottoms are equal as values.
func Bottom(msg string) Value { return Value{Kind: KBottom, S: msg} }

// IsBottom reports whether v is the error value.
func (v Value) IsBottom() bool { return v.Kind == KBottom }

// Bool returns a boolean object.
func Bool(b bool) Value { return Value{Kind: KBool, B: b} }

// Nat returns a natural-number object. Negative arguments are a programming
// error in the evaluator (naturals are closed under the paper's operations:
// subtraction is monus) and panic.
func Nat(n int64) Value {
	if n < 0 {
		panic(fmt.Sprintf("object.Nat: negative value %d", n))
	}
	return Value{Kind: KNat, N: n}
}

// Real returns a real-number object.
func Real(r float64) Value { return Value{Kind: KReal, R: r} }

// String_ returns a string object. (Named with a trailing underscore to
// avoid colliding with the Stringer method.)
func String_(s string) Value { return Value{Kind: KString, S: s} }

// Base returns a value of the uninterpreted base type named typ with the
// given literal representation.
func Base(typ, lit string) Value { return Value{Kind: KBase, Base: typ, S: lit} }

// Tuple returns a k-tuple object. Following the paper's convention, products
// have arity >= 2; a 0-ary tuple is the unit value and a 1-ary "tuple" is
// the component itself.
func Tuple(elems ...Value) Value {
	if len(elems) == 1 {
		return elems[0]
	}
	return Value{Kind: KTuple, Elems: elems}
}

// Unit is the empty tuple.
var Unit = Value{Kind: KTuple}

// Func wraps a Go function as a runtime function value.
func Func(fn func(Value) (Value, error)) Value { return Value{Kind: KFunc, Fn: fn} }

// True and False are the boolean constants.
var (
	True  = Bool(true)
	False = Bool(false)
)

// AsNat returns the natural-number payload, or an error if v is not a nat.
func (v Value) AsNat() (int64, error) {
	if v.Kind != KNat {
		return 0, fmt.Errorf("expected nat, got %s", v.Kind)
	}
	return v.N, nil
}

// AsBool returns the boolean payload, or an error if v is not a bool.
func (v Value) AsBool() (bool, error) {
	if v.Kind != KBool {
		return false, fmt.Errorf("expected bool, got %s", v.Kind)
	}
	return v.B, nil
}

// AsReal returns the real payload. A nat is promoted to real, matching the
// numeric overloading of the surface language.
func (v Value) AsReal() (float64, error) {
	switch v.Kind {
	case KReal:
		return v.R, nil
	case KNat:
		return float64(v.N), nil
	}
	return 0, fmt.Errorf("expected real, got %s", v.Kind)
}

// Proj returns the i-th component (0-based) of a tuple.
func (v Value) Proj(i int) (Value, error) {
	if v.Kind != KTuple {
		return Value{}, fmt.Errorf("projection from non-tuple %s", v.Kind)
	}
	if i < 0 || i >= len(v.Elems) {
		return Value{}, fmt.Errorf("projection index %d out of range for %d-tuple", i+1, len(v.Elems))
	}
	return v.Elems[i], nil
}

// IsFinite reports whether a real value is finite; used by drivers that must
// reject NaN (NaN breaks the total order).
func IsFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// GoString renders the value for debugging; same as String.
func (v Value) GoString() string { return v.String() }

// String renders the value in the complex-object data exchange format of
// section 3 of the paper, extended with bag brackets {| |} and with
// k-dimensional arrays in the row-major literal form
// [[ n1,...,nk ; v0, v1, ... ]]. One-dimensional arrays print as plain
// [[v0, v1, ...]]. The output is accepted by package exchange.
func (v Value) String() string {
	var b strings.Builder
	v.write(&b)
	return b.String()
}

func (v Value) write(b *strings.Builder) {
	switch v.Kind {
	case KBottom:
		b.WriteString("_|_")
		if v.S != "" {
			fmt.Fprintf(b, "(* %s *)", v.S)
		}
	case KBool:
		if v.B {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case KNat:
		fmt.Fprintf(b, "%d", v.N)
	case KReal:
		s := fmt.Sprintf("%g", v.R)
		b.WriteString(s)
		// Guarantee the literal re-reads as a real, not a nat.
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			b.WriteString(".0")
		}
	case KString:
		fmt.Fprintf(b, "%q", v.S)
	case KBase:
		fmt.Fprintf(b, "%s#%q", v.Base, v.S)
	case KTuple:
		b.WriteString("(")
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.write(b)
		}
		b.WriteString(")")
	case KSet:
		b.WriteString("{")
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.write(b)
		}
		b.WriteString("}")
	case KBag:
		b.WriteString("{|")
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.write(b)
		}
		b.WriteString("|}")
	case KArray:
		b.WriteString("[[")
		if len(v.Shape) > 1 {
			for i, n := range v.Shape {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "%d", n)
			}
			b.WriteString("; ")
		}
		// Cell-at-a-time through the backing: rendering reads every cell
		// anyway, but must not memoize a lazy array into memory as a side
		// effect (the tile cache budget would stop meaning anything).
		for i, n := 0, v.Size(); i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			v.mustCellAt(i).write(b)
		}
		b.WriteString("]]")
	case KFunc:
		b.WriteString("fn")
	default:
		fmt.Fprintf(b, "<bad kind %d>", v.Kind)
	}
}

// Pretty renders the value the way the paper's read-eval-print loop does,
// with arrays shown as (index):value pairs, truncated to at most max entries
// per array:
//
//	[[(0):0, (1):31, (2):28, ...]]
func (v Value) Pretty(max int) string {
	var b strings.Builder
	v.pretty(&b, max)
	return b.String()
}

func (v Value) pretty(b *strings.Builder, max int) {
	switch v.Kind {
	case KArray:
		b.WriteString("[[")
		// A truncated preview fetches only the cells it shows. The REPL
		// echoes every readval through here: materializing would drag the
		// whole variable into memory before the first real query runs.
		n := v.Size()
		shown := n
		if max > 0 && shown > max {
			shown = max
		}
		for i := 0; i < shown; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			idx := unflatten(i, v.Shape)
			b.WriteString("(")
			for j, x := range idx {
				if j > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(b, "%d", x)
			}
			b.WriteString("):")
			v.mustCellAt(i).pretty(b, max)
		}
		if shown < n {
			b.WriteString(", ...")
		}
		b.WriteString("]]")
	case KTuple:
		b.WriteString("(")
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.pretty(b, max)
		}
		b.WriteString(")")
	case KSet, KBag:
		open, close := "{", "}"
		if v.Kind == KBag {
			open, close = "{|", "|}"
		}
		b.WriteString(open)
		n := len(v.Elems)
		shown := n
		if max > 0 && shown > max {
			shown = max
		}
		for i := 0; i < shown; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			v.Elems[i].pretty(b, max)
		}
		if shown < n {
			b.WriteString(", ...")
		}
		b.WriteString(close)
	default:
		v.write(b)
	}
}
