package object

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// ArrayBacking supplies the cells of a lazy array on demand. Implementations
// (the tile cache in internal/tile) must be safe for concurrent use and must
// be deterministic: the same offset must always produce the same Value, so
// that lazy evaluation is observationally identical to materialized
// evaluation. Offsets are flat row-major positions in [0, Size()).
type ArrayBacking interface {
	// Cell fetches the value at flat row-major offset off. A nil ctx means
	// "not cancellable" (context.Background semantics).
	Cell(ctx context.Context, off int) (Value, error)
	// Size returns the total number of cells.
	Size() int
}

// RangeBacking is an optional fast path: backings that can deliver a
// contiguous run of cells in one call (a tile, or a whole variable) avoid
// per-cell dispatch during materialization.
type RangeBacking interface {
	CellRange(ctx context.Context, start, n int) ([]Value, error)
}

// lazyState is the shared mutable core of a lazy array. It is referenced by
// pointer from every copy of the Value, so materializing once serves all
// copies. All fields past the sync primitives are written exactly once,
// under once, and read only after done is observed true.
type lazyState struct {
	backing ArrayBacking
	size    int

	once sync.Once
	done atomic.Bool
	data []Value
	err  error
}

// LazyArray returns a k-dimensional array whose cells are fetched on demand
// from backing. The shape must be non-empty with a cell count equal to
// backing.Size(). The value behaves exactly like the materialized array:
// subscripting reads through the backing, and operations that need the whole
// array (printing, comparison, graph, append) materialize it first.
func LazyArray(shape []int, backing ArrayBacking) (Value, error) {
	if len(shape) == 0 {
		return Value{}, fmt.Errorf("object: array must have dimensionality >= 1")
	}
	size := 1
	for _, n := range shape {
		if n < 0 {
			return Value{}, fmt.Errorf("object: negative dimension length %d", n)
		}
		size *= n
	}
	if backing == nil {
		return Value{}, fmt.Errorf("object: lazy array requires a backing")
	}
	if size != backing.Size() {
		return Value{}, fmt.Errorf("object: shape %v requires %d cells, backing has %d", shape, size, backing.Size())
	}
	return Value{Kind: KArray, Shape: shape, lazy: &lazyState{backing: backing, size: size}}, nil
}

// IsLazy reports whether v is a lazy (backing-store) array.
func (v Value) IsLazy() bool { return v.lazy != nil }

// Backing returns the backing store of a lazy array, or nil. Callers use it
// for interface probes (e.g. the cost estimator asking for a tile count); it
// must not be used to bypass the cell access paths.
func (v Value) Backing() any {
	if v.lazy == nil {
		return nil
	}
	return v.lazy.backing
}

// CellAtCtx returns the cell at flat row-major offset off, fetching through
// the backing for lazy arrays. off must be in range (callers bounds-check
// against Size/Shape first, as the eager paths do).
func (v Value) CellAtCtx(ctx context.Context, off int) (Value, error) {
	if v.lazy == nil {
		return v.Data[off], nil
	}
	if v.lazy.done.Load() {
		if v.lazy.err != nil {
			return Value{}, v.lazy.err
		}
		return v.lazy.data[off], nil
	}
	return v.lazy.backing.Cell(ctx, off)
}

// CellAt is CellAtCtx without cancellation.
func (v Value) CellAt(off int) (Value, error) { return v.CellAtCtx(nil, off) }

// CellsCtx returns the full row-major cell slice, materializing a lazy array
// (once; the result is cached and shared by all copies of the value). The
// returned slice must not be mutated.
func (v Value) CellsCtx(ctx context.Context) ([]Value, error) {
	if v.lazy == nil {
		return v.Data, nil
	}
	ls := v.lazy
	ls.once.Do(func() {
		ls.data, ls.err = fetchAll(ctx, ls.backing, ls.size)
		ls.done.Store(true)
	})
	return ls.data, ls.err
}

// Cells is CellsCtx without cancellation.
func (v Value) Cells() ([]Value, error) { return v.CellsCtx(nil) }

// MaterializeCtx returns an eager copy of v: same kind, shape and cells, no
// backing indirection. Non-lazy values are returned unchanged.
func (v Value) MaterializeCtx(ctx context.Context) (Value, error) {
	if v.lazy == nil {
		return v, nil
	}
	cells, err := v.CellsCtx(ctx)
	if err != nil {
		return Value{}, err
	}
	return Value{Kind: KArray, Shape: v.Shape, Data: cells}, nil
}

// Materialize is MaterializeCtx without cancellation.
func (v Value) Materialize() (Value, error) { return v.MaterializeCtx(nil) }

func fetchAll(ctx context.Context, b ArrayBacking, size int) ([]Value, error) {
	if rb, ok := b.(RangeBacking); ok {
		cells, err := rb.CellRange(ctx, 0, size)
		if err != nil {
			return nil, err
		}
		if len(cells) != size {
			return nil, fmt.Errorf("object: backing returned %d cells, want %d", len(cells), size)
		}
		return cells, nil
	}
	cells := make([]Value, size)
	for off := 0; off < size; off++ {
		c, err := b.Cell(ctx, off)
		if err != nil {
			return nil, err
		}
		cells[off] = c
	}
	return cells, nil
}

// MaterializeError is the panic payload used when a lazy array must be
// materialized inside an interface that has no error return (String,
// Pretty, Compare) and the backing fails. The session boundary recovers it
// and converts it back into an ordinary error.
type MaterializeError struct{ Err error }

func (e *MaterializeError) Error() string { return e.Err.Error() }
func (e *MaterializeError) Unwrap() error { return e.Err }

// mustCells is Cells for contexts without an error return; it panics with a
// *MaterializeError on backing failure.
func (v Value) mustCells() []Value {
	cells, err := v.Cells()
	if err != nil {
		panic(&MaterializeError{Err: err})
	}
	return cells
}

// mustCellAt is CellAt for contexts without an error return; it panics with
// a *MaterializeError on backing failure. Unlike mustCells it fetches one
// cell through the backing without memoizing the whole array, so renderers
// that only touch a prefix of a lazy array don't pin all of it in memory.
func (v Value) mustCellAt(off int) Value {
	c, err := v.CellAt(off)
	if err != nil {
		panic(&MaterializeError{Err: err})
	}
	return c
}
