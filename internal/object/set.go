package object

import "sort"

// EmptySet is the empty set {}.
var EmptySet = Value{Kind: KSet}

// EmptyBag is the empty bag {||}.
var EmptyBag = Value{Kind: KBag}

// Set returns the canonical set containing the given elements: sorted by the
// total order Compare and deduplicated. The argument slice is not retained.
func Set(elems ...Value) Value {
	return Value{Kind: KSet, Elems: canonicalize(elems, true)}
}

// SetFromSorted wraps an already sorted, already deduplicated slice as a set
// without copying. The caller must not mutate the slice afterwards; this is
// the fast path for operations that produce canonical output directly
// (merges, filters over canonical input).
func SetFromSorted(elems []Value) Value { return Value{Kind: KSet, Elems: elems} }

// Bag returns the canonical bag containing the given elements with their
// multiplicities: sorted by Compare, duplicates preserved.
func Bag(elems ...Value) Value {
	return Value{Kind: KBag, Elems: canonicalize(elems, false)}
}

// BagFromSorted wraps an already sorted slice as a bag without copying.
func BagFromSorted(elems []Value) Value { return Value{Kind: KBag, Elems: elems} }

// canonicalize sorts (and optionally dedups) a copy of elems.
func canonicalize(elems []Value, dedup bool) []Value {
	if len(elems) == 0 {
		return nil
	}
	out := make([]Value, len(elems))
	copy(out, elems)
	sort.SliceStable(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	if !dedup {
		return out
	}
	w := 1
	for i := 1; i < len(out); i++ {
		if Compare(out[i], out[w-1]) != 0 {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Union returns the set union a ∪ b of two canonical sets, by linear merge.
func Union(a, b Value) (Value, error) {
	if a.Kind != KSet || b.Kind != KSet {
		return Value{}, kindError2("union", a, b, KSet)
	}
	merged := make([]Value, 0, len(a.Elems)+len(b.Elems))
	i, j := 0, 0
	for i < len(a.Elems) && j < len(b.Elems) {
		switch Compare(a.Elems[i], b.Elems[j]) {
		case -1:
			merged = append(merged, a.Elems[i])
			i++
		case 1:
			merged = append(merged, b.Elems[j])
			j++
		default:
			merged = append(merged, a.Elems[i])
			i++
			j++
		}
	}
	merged = append(merged, a.Elems[i:]...)
	merged = append(merged, b.Elems[j:]...)
	return SetFromSorted(merged), nil
}

// BagUnion returns the additive bag union a ⊎ b (multiplicities add), by
// linear merge of the two sorted element slices.
func BagUnion(a, b Value) (Value, error) {
	if a.Kind != KBag || b.Kind != KBag {
		return Value{}, kindError2("bag union", a, b, KBag)
	}
	merged := make([]Value, 0, len(a.Elems)+len(b.Elems))
	i, j := 0, 0
	for i < len(a.Elems) && j < len(b.Elems) {
		if Compare(a.Elems[i], b.Elems[j]) <= 0 {
			merged = append(merged, a.Elems[i])
			i++
		} else {
			merged = append(merged, b.Elems[j])
			j++
		}
	}
	merged = append(merged, a.Elems[i:]...)
	merged = append(merged, b.Elems[j:]...)
	return BagFromSorted(merged), nil
}

// Member reports whether x ∈ s, by binary search over the canonical order.
func Member(x, s Value) (bool, error) {
	if s.Kind != KSet && s.Kind != KBag {
		return false, kindError("membership test", s, KSet)
	}
	elems := s.Elems
	lo, hi := 0, len(elems)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(elems[mid], x) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(elems) && Compare(elems[lo], x) == 0, nil
}

// Card returns the cardinality of a set or bag (counting multiplicities).
func Card(s Value) (int, error) {
	if s.Kind != KSet && s.Kind != KBag {
		return 0, kindError("cardinality", s, KSet)
	}
	return len(s.Elems), nil
}

func kindError(op string, v Value, want Kind) error {
	return &TypeError{Op: op, Got: v.Kind, Want: want}
}

func kindError2(op string, a, b Value, want Kind) error {
	if a.Kind != want {
		return kindError(op, a, want)
	}
	return kindError(op, b, want)
}

// TypeError reports a runtime kind mismatch. Well-typed queries never
// produce one; they arise only from misuse of the object API by external
// primitives.
type TypeError struct {
	Op   string
	Got  Kind
	Want Kind
}

func (e *TypeError) Error() string {
	return "object: " + e.Op + ": expected " + e.Want.String() + ", got " + e.Got.String()
}
