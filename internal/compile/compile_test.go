package compile

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

func run(t *testing.T, e *Engine, expr ast.Expr) object.Value {
	t.Helper()
	v, err := e.EvalExpr(context.Background(), expr)
	if err != nil {
		t.Fatalf("EvalExpr(%s): %v", expr, err)
	}
	return v
}

func nat(n int64) ast.Expr   { return &ast.NatLit{Val: n} }
func v(name string) ast.Expr { return &ast.Var{Name: name} }

// TestSlotShadowing exercises the resolve pass where it can go wrong:
// rebinding the same name in nested scopes must address distinct slots.
// ((λx. ((λx. x+1) (x*2)) + x) 5) = (5*2+1) + 5 = 16.
func TestSlotShadowing(t *testing.T) {
	inner := &ast.App{
		Fn:  &ast.Lam{Param: "x", Body: &ast.Arith{Op: ast.OpAdd, L: v("x"), R: nat(1)}},
		Arg: &ast.Arith{Op: ast.OpMul, L: v("x"), R: nat(2)},
	}
	outer := &ast.App{
		Fn:  &ast.Lam{Param: "x", Body: &ast.Arith{Op: ast.OpAdd, L: inner, R: v("x")}},
		Arg: nat(5),
	}
	got := run(t, New(nil), outer)
	if !object.Equal(got, object.Nat(16)) {
		t.Errorf("shadowed application = %s, want 16", got)
	}
}

// TestLoopRebindShadowing: a tabulation index shadowing an enclosing lambda
// parameter must not clobber the outer binding after the loop.
// (λi. [[ i | i < 3 ]][0] + i) 10 = 0 + 10.
func TestLoopRebindShadowing(t *testing.T) {
	tab := &ast.ArrayTab{Head: v("i"), Idx: []string{"i"}, Bounds: []ast.Expr{nat(3)}}
	body := &ast.Arith{
		Op: ast.OpAdd,
		L:  &ast.Subscript{Arr: tab, Index: nat(0)},
		R:  v("i"),
	}
	expr := &ast.App{Fn: &ast.Lam{Param: "i", Body: body}, Arg: nat(10)}
	got := run(t, New(nil), expr)
	if !object.Equal(got, object.Nat(10)) {
		t.Errorf("= %s, want 10 (tabulation index leaked into the outer slot)", got)
	}
}

// TestClosureCapturesByValue: a closure must freeze its captured bindings at
// creation. Σ_{x∈{1,2,3}} f(x) where f = (λx. λy. x*10+y) applied per
// element — each closure sees its own x.
func TestClosureCapturesByValue(t *testing.T) {
	// sum over gen!4 of ((λy. y*x) 2)  with x the loop variable:
	// Σ_{x∈{0,1,2,3}} 2x = 12.
	expr := &ast.Sum{
		Var:  "x",
		Over: &ast.Gen{N: nat(4)},
		Head: &ast.App{
			Fn:  &ast.Lam{Param: "y", Body: &ast.Arith{Op: ast.OpMul, L: v("y"), R: v("x")}},
			Arg: nat(2),
		},
	}
	got := run(t, New(nil), expr)
	if !object.Equal(got, object.Nat(12)) {
		t.Errorf("sum of per-iteration closures = %s, want 12", got)
	}
}

// TestEscapedClosure: a function value returned from EvalExpr keeps working
// after the evaluation that created it ends (top-level vals of function
// type escape this way).
func TestEscapedClosure(t *testing.T) {
	e := New(nil)
	f := run(t, e, &ast.Lam{Param: "x", Body: &ast.Arith{Op: ast.OpAdd, L: v("x"), R: nat(1)}})
	if f.Kind != object.KFunc {
		t.Fatalf("lam = %s, want a function", f.Kind)
	}
	got, err := f.Fn(object.Nat(41))
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(got, object.Nat(42)) {
		t.Errorf("escaped closure = %s, want 42", got)
	}
}

// TestUnboundVarLazyError: compilation never fails; an unbound variable
// errors only if executed, so one in the untaken branch of a conditional is
// harmless (the interpreter behaves identically).
func TestUnboundVarLazyError(t *testing.T) {
	e := New(nil)
	got := run(t, e, &ast.If{Cond: &ast.BoolLit{Val: true}, Then: nat(1), Else: v("nope")})
	if !object.Equal(got, object.Nat(1)) {
		t.Errorf("= %s, want 1", got)
	}
	_, err := e.EvalExpr(context.Background(), v("nope"))
	if err == nil || err.Error() != `eval: unbound variable "nope"` {
		t.Errorf("unbound variable error = %v", err)
	}
}

// TestGlobalsResolved: globals resolve at compile time against the engine's
// snapshot.
func TestGlobalsResolved(t *testing.T) {
	e := New(map[string]object.Value{"g": object.Nat(7)})
	got := run(t, e, &ast.Arith{Op: ast.OpAdd, L: v("g"), R: nat(1)})
	if !object.Equal(got, object.Nat(8)) {
		t.Errorf("global read = %s, want 8", got)
	}
}

// TestAllNodesCompile runs one expression per AST node type through the
// compiled engine, so a node added to the language without a compileNode
// case fails here rather than at a user's query. Globals supply the free
// variables; every expression must evaluate without an "unhandled node"
// error.
func TestAllNodesCompile(t *testing.T) {
	globals := map[string]object.Value{
		"f": object.Func(func(x object.Value) (object.Value, error) { return x, nil }),
		"x": object.Nat(1),
		"p": object.Tuple(object.Nat(1), object.Nat(2)),
		"S": object.Set(object.Nat(1), object.Nat(2)),
		"B": object.Bag(object.Nat(1), object.Nat(1)),
		"A": object.Vector(object.Nat(4), object.Nat(5)),
		"G": object.Set(object.Tuple(object.Nat(0), object.Nat(9))),
	}
	exprs := []ast.Expr{
		v("x"),
		param("q"),
		&ast.Lam{Param: "x", Body: v("x")},
		&ast.App{Fn: v("f"), Arg: v("x")},
		&ast.Tuple{Elems: []ast.Expr{nat(1), nat(2)}},
		&ast.Proj{I: 1, K: 2, Tuple: v("p")},
		&ast.EmptySet{},
		&ast.Singleton{Elem: nat(1)},
		&ast.Union{L: &ast.EmptySet{}, R: &ast.Singleton{Elem: nat(1)}},
		&ast.BigUnion{Head: &ast.Singleton{Elem: v("x")}, Var: "x", Over: v("S")},
		&ast.Get{Set: &ast.Singleton{Elem: nat(3)}},
		&ast.BoolLit{Val: true},
		&ast.If{Cond: &ast.BoolLit{Val: true}, Then: nat(1), Else: nat(2)},
		&ast.Cmp{Op: ast.OpEq, L: nat(1), R: nat(1)},
		nat(7),
		&ast.RealLit{Val: 2.5},
		&ast.StringLit{Val: "s"},
		&ast.Arith{Op: ast.OpAdd, L: nat(1), R: nat(2)},
		&ast.Gen{N: nat(5)},
		&ast.Sum{Head: v("x"), Var: "x", Over: v("S")},
		&ast.ArrayTab{Head: v("i"), Idx: []string{"i"}, Bounds: []ast.Expr{nat(3)}},
		&ast.Subscript{Arr: v("A"), Index: nat(0)},
		&ast.Dim{K: 1, Arr: v("A")},
		&ast.Index{K: 1, Set: v("G")},
		&ast.MkArray{Dims: []ast.Expr{nat(2)}, Elems: []ast.Expr{nat(1), nat(2)}},
		&ast.Bottom{},
		&ast.EmptyBag{},
		&ast.SingletonBag{Elem: nat(1)},
		&ast.BagUnion{L: &ast.EmptyBag{}, R: &ast.SingletonBag{Elem: nat(1)}},
		&ast.BigBagUnion{Head: &ast.SingletonBag{Elem: v("x")}, Var: "x", Over: v("B")},
		&ast.RankUnion{Head: &ast.Singleton{Elem: v("i")}, Var: "x", RankVar: "i", Over: v("S")},
		&ast.RankBagUnion{Head: &ast.SingletonBag{Elem: v("i")}, Var: "x", RankVar: "i", Over: v("B")},
	}
	if len(exprs) != len(ast.AllNodeNames()) {
		t.Fatalf("test covers %d node types, ast declares %d", len(exprs), len(ast.AllNodeNames()))
	}
	covered := map[string]bool{}
	for _, expr := range exprs {
		covered[ast.NodeName(expr)] = true
		e := New(globals)
		e.Params = map[string]object.Value{"q": object.Nat(1)}
		if _, err := e.EvalExpr(context.Background(), expr); err != nil {
			if strings.Contains(err.Error(), "unhandled node") {
				t.Errorf("%s: %v", ast.NodeName(expr), err)
			} else {
				t.Errorf("%s: unexpected error %v", ast.NodeName(expr), err)
			}
		}
	}
	for _, name := range ast.AllNodeNames() {
		if !covered[name] {
			t.Errorf("node %s not covered", name)
		}
	}
}

// TestStepBudget: the compiled engine enforces MaxSteps with the same
// structured error as the interpreter.
func TestStepBudget(t *testing.T) {
	e := New(nil)
	e.MaxSteps = 50
	big := &ast.ArrayTab{Head: v("i"), Idx: []string{"i"}, Bounds: []ast.Expr{nat(100000)}}
	_, err := e.EvalExpr(context.Background(), big)
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceSteps {
		t.Fatalf("err = %v, want a steps ResourceError", err)
	}
	if c := e.Counters(); c.Steps <= 50-1 {
		t.Errorf("Counters().Steps = %d, want the consumption reported on abort", c.Steps)
	}
}

// TestDepthBudget: MaxDepth wraps every node in a depth guard and forces
// serial tabulation; deep recursion trips it.
func TestDepthBudget(t *testing.T) {
	e := New(nil)
	e.Limits = eval.Limits{MaxDepth: 10}
	// Nest arithmetic deeper than the limit.
	expr := ast.Expr(nat(1))
	for i := 0; i < 50; i++ {
		expr = &ast.Arith{Op: ast.OpAdd, L: expr, R: nat(1)}
	}
	_, err := e.EvalExpr(context.Background(), expr)
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceDepth {
		t.Fatalf("err = %v, want a depth ResourceError", err)
	}
}

// TestCountersMatchInterp: the two engines charge identical counters on a
// workload touching tabulation, set algebra, summation and closures.
func TestCountersMatchInterp(t *testing.T) {
	// [[ Σ_{x∈gen!(i+1)} x | i < 10 ]] plus a union and an index build.
	tab := &ast.ArrayTab{
		Head: &ast.Sum{
			Var:  "x",
			Over: &ast.Gen{N: &ast.Arith{Op: ast.OpAdd, L: v("i"), R: nat(1)}},
			Head: v("x"),
		},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(10)},
	}
	expr := &ast.Tuple{Elems: []ast.Expr{
		tab,
		&ast.Union{L: &ast.Singleton{Elem: nat(1)}, R: &ast.Singleton{Elem: nat(2)}},
	}}

	interp := eval.New(nil)
	want, err := interp.EvalExpr(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	compiled := New(nil)
	got, err := compiled.EvalExpr(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(got, want) {
		t.Fatalf("values differ: %s vs %s", got, want)
	}
	if ic, cc := interp.Counters(), compiled.Counters(); ic != cc {
		t.Errorf("counters differ:\ninterp   %+v\ncompiled %+v", ic, cc)
	}
}
