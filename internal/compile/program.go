package compile

import (
	"context"
	"math"
	"runtime"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/cost"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/trace"
)

// Program is a prepared plan: a core expression lowered once to
// slot-resolved closures over a snapshot of the globals, executable many
// times. It is the cacheable artifact behind the query server's
// prepared-plan cache — parse/typecheck/optimize/compile happen once, at
// NewProgram time, and each request then pays only Execute.
//
// A Program is immutable after construction and safe for concurrent
// Execute calls: all run-time state (work counters, budgets, interrupt
// state, recursion depth) lives on a per-execution machine reached through
// the frame, never on the compiled closures. The one deliberate exclusion
// is operator span profiling — a span plan's fold mutates shared plan
// nodes, so Programs always compile unprofiled closures (which are also
// exactly the fastest ones; see compile.EvalExpr's ProfOff path).
//
// The globals snapshot is taken at compile time (global references resolve
// to values, exactly as Engine.EvalExpr does), so a Program keeps
// observing the environment as of its preparation even if vals are
// rebound afterwards; cache keying on the environment epoch is what keeps
// served plans current.
type Program struct {
	code     compiledExpr
	maxSlots int
	// limits holds the compile-time limits; MaxDepth is baked into the
	// closures (the depth-guard wrapper), so Execute cannot change it.
	limits eval.Limits
	// shard is the range-partitionable view of the program, present when
	// the top-level expression is a tabulation (possibly under a chain of
	// let bindings); see range.go. nil otherwise.
	shard *shardCode
	// params maps $name placeholders to argument-frame indices; shared with
	// the shard view so distributed executions see the same frame layout.
	params *paramTable
	// est is the prepare-time estimate tree (cost.Estimate over expr and
	// the globals snapshot): per-operator cardinality and cost estimates
	// that ride the cached plan so every execution can join them against
	// its recorded actuals for free.
	est *trace.EstNode
}

// NewProgram compiles expr against a snapshot of globals. limits.MaxDepth,
// when positive, bakes the recursion-depth guard into the compiled code
// (and forces serial tabulation at Execute, as depth is serial state); the
// other limit fields serve as Execute's defaults.
func NewProgram(expr ast.Expr, globals map[string]object.Value, limits eval.Limits) *Program {
	if globals == nil {
		globals = map[string]object.Value{}
	}
	pt := &paramTable{}
	c := &compiler{globals: globals, limits: limits, params: pt}
	p := &Program{
		code:     c.compile(expr),
		maxSlots: c.maxSlots,
		limits:   limits,
		params:   pt,
		est:      cost.Estimate(expr, globals),
	}
	// The shardable core may sit under a chain of desugared let bindings
	// (App{Lam, bound}), which the optimizer's let-hoisting produces when it
	// pulls loop-invariant work out of a tabulation. Peel the chain so such
	// plans stay range-partitionable; the bindings are re-established per
	// shard (see range.go).
	var lets []letBinding
	core := expr
	for {
		app, ok := core.(*ast.App)
		if !ok {
			break
		}
		lam, ok := app.Fn.(*ast.Lam)
		if !ok {
			break
		}
		lets = append(lets, letBinding{name: lam.Param, bound: app.Arg})
		core = lam.Body
	}
	if tab, ok := core.(*ast.ArrayTab); ok {
		p.shard = newShardCode(lets, tab, globals, limits, pt)
	}
	return p
}

// ParamNames returns the names of the program's $name placeholders, in
// first-occurrence order; nil when the program has none.
func (p *Program) ParamNames() []string {
	if p.params == nil || len(p.params.names) == 0 {
		return nil
	}
	return append([]string(nil), p.params.names...)
}

// Estimates returns the program's prepare-time estimate tree, computed
// once at NewProgram and shared (immutably) by all executions; nil only
// for a nil expression.
func (p *Program) Estimates() *trace.EstNode { return p.est }

// ExecOpts configures one execution of a Program.
type ExecOpts struct {
	// Limits bounds this execution's resources. MaxDepth is ignored: the
	// depth guard is compiled into the Program (see NewProgram). The zero
	// value falls back to the Program's compile-time limits.
	Limits eval.Limits
	// MaxSteps mirrors Engine.MaxSteps: a second step bound, kept for
	// parity with the session knob; either tripping aborts.
	MaxSteps int64
	// Workers caps tabulation fan-out; 0 means GOMAXPROCS.
	Workers int
	// Threshold overrides DefaultThreshold when positive; negative
	// disables parallel tabulation.
	Threshold int
	// Args is this execution's argument frame: one value per $name
	// placeholder. Names the program does not mention are ignored at this
	// level (callers validate strictly); a placeholder left unbound errors
	// only if evaluated, like an unbound variable.
	Args map[string]object.Value
}

// Execute runs the program under ctx on a fresh machine, returning the
// value and the work counters this execution charged. Concurrent Execute
// calls on one Program are independent: counters, budgets and cancellation
// are all per-call.
func (p *Program) Execute(ctx context.Context, opts ExecOpts) (object.Value, eval.Counters, error) {
	m := p.newMachine(ctx, opts)
	// Clear the interrupt state on the way out, as EvalExpr does: closures
	// that escape this execution capture the machine, and a later call
	// through them must not observe a stale context or deadline.
	defer m.clearInterrupt()
	fr := &frame{m: m, slots: make([]object.Value, p.maxSlots)}
	v, err := p.code(fr)
	return v, m.counters(), err
}

// newMachine builds the per-execution machine for one Execute-family call,
// resolving opts against the program's compile-time limits.
func (p *Program) newMachine(ctx context.Context, opts ExecOpts) *machine {
	lim := opts.Limits
	if lim == (eval.Limits{}) {
		lim = p.limits
	}
	// The depth guard is compiled in; keep the machine's view consistent
	// with it (a MaxDepth also forces serial tabulation below).
	lim.MaxDepth = p.limits.MaxDepth

	m := &machine{
		limits:    lim,
		maxSteps:  opts.MaxSteps,
		workers:   opts.Workers,
		threshold: int64(opts.Threshold),
		stepMask:  eval.InterruptInterval - 1,
	}
	if opts.MaxSteps > 0 || lim.MaxSteps > 0 {
		m.stepMask = 0
	}
	if m.workers <= 0 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	if opts.Threshold == 0 {
		m.threshold = DefaultThreshold
	}
	if opts.Threshold < 0 || lim.MaxDepth > 0 {
		m.threshold = math.MaxInt64
	}
	m.ctx = ctx
	if lim.Timeout > 0 {
		m.deadline = time.Now().Add(lim.Timeout)
	}
	m.args, m.argOK = p.params.resolve(opts.Args)
	return m
}

// clearInterrupt drops the machine's context and deadline so closures that
// escaped the execution cannot observe stale interrupt state.
func (m *machine) clearInterrupt() {
	m.ctx = nil
	m.deadline = time.Time{}
}
