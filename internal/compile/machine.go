package compile

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// machine carries the per-evaluation runtime state of the compiled engine:
// resource budgets, interrupt state and the work counters. One machine is
// created per EvalExpr; parallel tabulation forks one child machine per
// worker so the hot counter path stays uncontended — each worker counts
// locally and the totals are flushed to the parent at join, making the
// final counters exactly equal to a serial run's.
type machine struct {
	limits   eval.Limits
	maxSteps int64
	// workers caps tabulation fan-out; threshold is the element count at or
	// above which a tabulation fans out (maxInt64 disables parallelism).
	workers   int
	threshold int64
	// stepMask routes steps to stepSlow when n&stepMask == 0: it is
	// InterruptInterval-1 normally (amortized interrupt checks only) and 0
	// when a step budget is configured (every step must be checked). A
	// mask instead of a bool keeps step() under the inlining budget.
	stepMask int64

	ctx      context.Context
	deadline time.Time
	// depth is the Eval recursion depth, tracked only when Limits.MaxDepth
	// is set. Depth tracking is inherently serial, so a MaxDepth limit
	// forces serial tabulation (threshold = maxInt64).
	depth int

	// parent is non-nil in tabulation worker machines. baseSteps/baseCells
	// are the global totals this worker's budget checks add to its local
	// counts; baseSteps is refreshed every InterruptInterval steps by
	// syncSteps, bounding budget overshoot to workers*InterruptInterval.
	parent       *machine
	baseSteps    int64
	baseCells    int64
	flushedSteps int64

	// prof is the span-profiling accumulation context of this evaluation
	// (nil when profiling is off); workers fork their own so the measured
	// path stays uncontended, and flush merges them back at join. Cleared
	// at EvalExpr exit, like ctx, so escaped closures see no stale state.
	prof *eval.ProfCtx

	// args is this execution's argument frame: the value of each $name
	// placeholder at its paramTable index, with argOK flagging which indices
	// were actually supplied (the zero object.Value is not a usable
	// sentinel). Both slices are read-only after machine construction and
	// shared with forked workers.
	args  []object.Value
	argOK []bool

	steps, cells, tabs, setOps, iters atomic.Int64
}

// step charges one evaluator step; mirrors the per-node guards of
// eval.Evaluator.Eval. The function stays small enough to inline into every
// compiled node closure: the common case is one atomic add and a mask test,
// with budget enforcement and the amortized interrupt check in stepSlow.
func (m *machine) step() error {
	if n := m.steps.Add(1); n&m.stepMask == 0 {
		return m.stepSlow(n)
	}
	return nil
}

// stepSlow enforces the step budgets and, every InterruptInterval steps,
// runs the interrupt check; in workers that boundary also publishes the
// local step count to the parent.
func (m *machine) stepSlow(n int64) error {
	total := satAdd(m.baseSteps, n)
	if m.maxSteps > 0 && total > m.maxSteps {
		return &eval.ResourceError{Kind: eval.ResourceSteps, Limit: m.maxSteps, Used: total}
	}
	if l := m.limits.MaxSteps; l > 0 && total > l {
		return &eval.ResourceError{Kind: eval.ResourceSteps, Limit: l, Used: total}
	}
	if n&(eval.InterruptInterval-1) == 0 {
		if m.parent != nil {
			m.syncSteps(n)
		}
		if m.ctx != nil || !m.deadline.IsZero() {
			if err := eval.CheckInterrupt(m.ctx, m.deadline, m.limits.Timeout); err != nil {
				return err
			}
		}
	}
	return nil
}

// chargeCells charges n cells against the cell budget, saturating rather
// than overflowing; mirrors eval.Evaluator.chargeCells. Constructors charge
// BEFORE allocating, so a budget violation aborts without the allocation.
func (m *machine) chargeCells(n int64) error {
	for {
		old := m.cells.Load()
		nw := satAdd(old, n)
		if m.cells.CompareAndSwap(old, nw) {
			used := satAdd(m.baseCells, nw)
			if max := m.limits.MaxCells; max > 0 && used > max {
				return &eval.ResourceError{Kind: eval.ResourceCells, Limit: max, Used: used}
			}
			return nil
		}
	}
}

// fork returns a worker machine that counts locally against a snapshot of
// the parent's totals. Workers never nest (tabulations inside a worker run
// serially), so parent is always the root machine.
func (m *machine) fork() *machine {
	w := &machine{
		limits:    m.limits,
		maxSteps:  m.maxSteps,
		workers:   m.workers,
		threshold: m.threshold,
		stepMask:  m.stepMask,
		ctx:       m.ctx,
		deadline:  m.deadline,
		depth:     m.depth,
		parent:    m,
		baseSteps: satAdd(m.baseSteps, m.steps.Load()),
		baseCells: satAdd(m.baseCells, m.cells.Load()),
		prof:      m.prof.Fork(),
		args:      m.args,
		argOK:     m.argOK,
	}
	return w
}

// syncSteps publishes this worker's not-yet-flushed steps to the parent and
// refreshes the worker's view of the global total, so step budgets inside a
// parallel region stay within workers*InterruptInterval of exact.
func (m *machine) syncSteps(local int64) {
	delta := local - m.flushedSteps
	m.flushedSteps = local
	parentTotal := satAdd(m.parent.steps.Add(delta), m.parent.baseSteps)
	m.baseSteps = parentTotal - local
}

// flush pushes this worker's remaining counts to the parent at join. Every
// local step is flushed exactly once (syncSteps tracks what's already been
// published), so the parent's post-join totals equal a serial run's.
func (m *machine) flush() {
	p := m.parent
	p.steps.Add(m.steps.Load() - m.flushedSteps)
	satAddAtomic(&p.cells, m.cells.Load())
	p.tabs.Add(m.tabs.Load())
	p.setOps.Add(m.setOps.Load())
	p.iters.Add(m.iters.Load())
	p.prof.MergeWorker(m.prof)
}

// inWorker reports whether this machine is a tabulation worker; used to
// suppress nested parallelism.
func (m *machine) inWorker() bool { return m.parent != nil }

// counters snapshots the machine's work counters.
func (m *machine) counters() eval.Counters {
	return eval.Counters{
		Steps:  m.steps.Load(),
		Cells:  m.cells.Load(),
		Tabs:   m.tabs.Load(),
		SetOps: m.setOps.Load(),
		Iters:  m.iters.Load(),
	}
}

// satAdd adds two non-negative counts, saturating at MaxInt64.
func satAdd(a, b int64) int64 {
	if b > math.MaxInt64-a {
		return math.MaxInt64
	}
	return a + b
}

// satAddAtomic adds n to c, saturating at MaxInt64.
func satAddAtomic(c *atomic.Int64, n int64) {
	for {
		old := c.Load()
		if c.CompareAndSwap(old, satAdd(old, n)) {
			return
		}
	}
}

// frame is the runtime activation record of compiled code: a flat slot
// array indexed by the compiler's resolve pass, replacing the interpreter's
// name-searched Env linked list. Loop constructs rebind by overwriting the
// slot; lambdas copy their captured slots into a fresh frame at closure
// creation, which matches the interpreter's persistent environments because
// a slot is never observed after its binder rebinds it.
type frame struct {
	m     *machine
	slots []object.Value
}
