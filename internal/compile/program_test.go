package compile

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// progExpr builds (λT. Σ{ T[x] | x ∈ gen!n }) [[ (i*i+7) % 93 | i < n ]]:
// one tabulation (parallel-eligible at the default threshold) plus a
// summation of n subscripts — enough work to make data races between
// concurrent executions likely to surface under -race, with a
// closed-form-checkable result.
func progExpr(n int64) ast.Expr {
	tab := &ast.ArrayTab{
		Head: &ast.Arith{
			Op: ast.OpMod,
			L:  &ast.Arith{Op: ast.OpAdd, L: &ast.Arith{Op: ast.OpMul, L: v("i"), R: v("i")}, R: nat(7)},
			R:  nat(93),
		},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(n)},
	}
	sum := &ast.Sum{
		Head: &ast.Subscript{Arr: v("T"), Index: v("x")},
		Var:  "x",
		Over: &ast.Gen{N: nat(n)},
	}
	return &ast.App{Fn: &ast.Lam{Param: "T", Body: sum}, Arg: tab}
}

// progWant computes the expected summation value in Go.
func progWant(n int64) int64 {
	var total int64
	for i := int64(0); i < n; i++ {
		total += (i*i + 7) % 93
	}
	return total
}

// TestProgramConcurrentExecutions is the race audit required by the plan
// cache: one compiled Program executed from 8 goroutines simultaneously
// (run under -race in CI). Each execution must see the correct value and
// exactly the counters of a solo run — counters are per-execution machines,
// never shared across requests.
func TestProgramConcurrentExecutions(t *testing.T) {
	const n = 20000
	p := NewProgram(progExpr(n), nil, eval.Limits{})

	// Reference run for value and counters.
	wantVal, wantCounters, err := p.Execute(context.Background(), ExecOpts{})
	if err != nil {
		t.Fatalf("reference Execute: %v", err)
	}
	if !object.Equal(wantVal, object.Nat(progWant(n))) {
		t.Fatalf("reference value = %s, want %d", wantVal, progWant(n))
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines force serial execution so serial and
			// parallel tabulation paths interleave on the same Program.
			opts := ExecOpts{}
			if g%2 == 0 {
				opts.Threshold = -1
			}
			v, c, err := p.Execute(context.Background(), opts)
			if err != nil {
				errs[g] = err
				return
			}
			if !object.Equal(v, wantVal) {
				errs[g] = errors.New("value diverged: " + v.String())
				return
			}
			if c != wantCounters {
				errs[g] = errors.New("counters diverged from solo run")
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// TestProgramPerExecutionBudgets: budgets are per Execute call, so a
// strict-budget execution must fail while concurrent unlimited executions
// of the same Program succeed, and the failure must be the typed resource
// error.
func TestProgramPerExecutionBudgets(t *testing.T) {
	const n = 5000
	p := NewProgram(progExpr(n), nil, eval.Limits{})

	var wg sync.WaitGroup
	results := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := ExecOpts{}
			if g == 0 {
				opts.Limits = eval.Limits{MaxSteps: 100}
			}
			_, _, err := p.Execute(context.Background(), opts)
			results[g] = err
		}(g)
	}
	wg.Wait()

	var re *eval.ResourceError
	if !errors.As(results[0], &re) || re.Kind != eval.ResourceSteps {
		t.Errorf("budgeted execution: got %v, want steps ResourceError", results[0])
	}
	for g := 1; g < 4; g++ {
		if results[g] != nil {
			t.Errorf("unlimited execution %d failed: %v", g, results[g])
		}
	}
}

// TestProgramPerExecutionCancellation: cancelling one execution's context
// must abort only that execution.
func TestProgramPerExecutionCancellation(t *testing.T) {
	const n = 200_000
	p := NewProgram(progExpr(n), nil, eval.Limits{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first interrupt check must trip
	_, _, err := p.Execute(ctx, ExecOpts{})
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceCancelled {
		t.Fatalf("cancelled execution: got %v, want cancelled ResourceError", err)
	}

	// And an uncancelled run of the same Program still succeeds.
	if _, _, err := p.Execute(context.Background(), ExecOpts{Limits: eval.Limits{MaxSteps: 0}}); err != nil {
		t.Fatalf("fresh execution after a cancelled one: %v", err)
	}
}

// TestProgramMatchesEngine: a Program and the one-shot Engine must agree on
// value and counters for the same expression and globals.
func TestProgramMatchesEngine(t *testing.T) {
	globals := map[string]object.Value{"base": object.Nat(3)}
	expr := &ast.Arith{Op: ast.OpAdd, L: progExpr(1000), R: v("base")}

	eng := New(globals)
	ev, eerr := eng.EvalExpr(context.Background(), expr)
	if eerr != nil {
		t.Fatalf("Engine.EvalExpr: %v", eerr)
	}
	p := NewProgram(expr, globals, eval.Limits{})
	pv, pc, perr := p.Execute(context.Background(), ExecOpts{})
	if perr != nil {
		t.Fatalf("Program.Execute: %v", perr)
	}
	if !object.Equal(ev, pv) {
		t.Errorf("values diverge: engine %s, program %s", ev, pv)
	}
	if ec := eng.Counters(); ec != pc {
		t.Errorf("counters diverge: engine %+v, program %+v", ec, pc)
	}
}
