package compile

import (
	"context"
	"errors"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// bigTab is [[ (i*7 + j*3 + 1) % 93 | i < rows, j < cols ]] — a cheap head
// over enough cells that a parallel run actually fans out.
func bigTab(rows, cols int64) ast.Expr {
	mul := func(a ast.Expr, k int64) ast.Expr {
		return &ast.Arith{Op: ast.OpMul, L: a, R: nat(k)}
	}
	head := &ast.Arith{
		Op: ast.OpMod,
		L: &ast.Arith{
			Op: ast.OpAdd,
			L:  &ast.Arith{Op: ast.OpAdd, L: mul(v("i"), 7), R: mul(v("j"), 3)},
			R:  nat(1),
		},
		R: nat(93),
	}
	return &ast.ArrayTab{Head: head, Idx: []string{"i", "j"}, Bounds: []ast.Expr{nat(rows), nat(cols)}}
}

// engines returns the three configurations whose observable behavior must
// be identical: the reference interpreter, the compiled engine forced
// serial, and the compiled engine forced parallel.
func engines(globals map[string]object.Value) map[string]eval.Engine {
	serial := New(globals)
	serial.Threshold = -1
	par := New(globals)
	par.Threshold = 1
	par.Workers = 8
	return map[string]eval.Engine{
		"interp":            eval.New(globals),
		"compiled/serial":   serial,
		"compiled/parallel": par,
	}
}

// TestParallelTabulationParity tabulates a 1e6-cell array under all three
// configurations and requires byte-identical values AND exactly equal
// counters — the parallel kernel's forked worker machines must flush their
// counts so the join total matches a serial run to the step. Run under
// -race this also exercises the disjoint-write claim of tabulateParallel.
func TestParallelTabulationParity(t *testing.T) {
	expr := bigTab(1000, 1000)
	type outcome struct {
		val      object.Value
		counters eval.Counters
	}
	results := map[string]outcome{}
	for name, e := range engines(nil) {
		v, err := e.EvalExpr(context.Background(), expr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = outcome{v, e.Counters()}
	}
	ref := results["interp"]
	if ref.counters.Cells < 1_000_000 {
		t.Fatalf("interp charged %d cells, want >= 1e6 (workload too small to test anything)", ref.counters.Cells)
	}
	for name, got := range results {
		if !object.Equal(got.val, ref.val) {
			t.Errorf("%s: value differs from interp", name)
		}
		if got.counters != ref.counters {
			t.Errorf("%s counters = %+v, want interp's %+v", name, got.counters, ref.counters)
		}
	}
}

// TestParallelFirstBottomDeterministic: when elements past a point are ⊥
// with offset-dependent payloads, the tabulation's result is the first ⊥ in
// row-major order — regardless of which worker computed it or finished
// first. A[i] over a vector shorter than the iteration space produces a
// distinct out-of-bounds ⊥ per offset, so a wrong winner is visible in the
// message.
func TestParallelFirstBottomDeterministic(t *testing.T) {
	const valid, total = 120_000, 200_000
	data := make([]object.Value, valid)
	for i := range data {
		data[i] = object.Nat(int64(i))
	}
	globals := map[string]object.Value{"A": object.Vector(data...)}
	expr := &ast.ArrayTab{
		Head:   &ast.Subscript{Arr: v("A"), Index: v("i")},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(total)},
	}

	want, err := eval.New(globals).EvalExpr(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	if !want.IsBottom() {
		t.Fatalf("interp result = %s, want ⊥ (first OOB at offset %d)", want.Kind, valid)
	}
	for name, e := range engines(globals) {
		got, err := e.EvalExpr(context.Background(), expr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: ⊥ = %s, want %s", name, got, want)
		}
	}
}

// TestParallelCancellation: a cancelled context aborts a parallel
// tabulation with a cancellation ResourceError instead of completing the
// scan; the resource-error early-exit path stops sibling workers.
func TestParallelCancellation(t *testing.T) {
	e := New(nil)
	e.Threshold = 1
	e.Workers = 8
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.EvalExpr(ctx, bigTab(1000, 1000))
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceCancelled {
		t.Fatalf("err = %v, want a cancellation ResourceError", err)
	}
}

// TestParallelStepBudget: a step budget trips inside a parallel region with
// the same error Kind as serial execution; the budget overshoot is bounded
// by workers x InterruptInterval, so the reported Used stays near the limit.
func TestParallelStepBudget(t *testing.T) {
	e := New(nil)
	e.Threshold = 1
	e.Workers = 8
	e.MaxSteps = 100_000
	_, err := e.EvalExpr(context.Background(), bigTab(1000, 1000))
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceSteps {
		t.Fatalf("err = %v, want a steps ResourceError", err)
	}
	slack := int64(8 * eval.InterruptInterval)
	if re.Used > re.Limit+slack+1 {
		t.Errorf("Used = %d, want <= Limit %d + workers*InterruptInterval %d", re.Used, re.Limit, slack)
	}
}

// TestMaxDepthForcesSerial: depth tracking is serial-only, so a MaxDepth
// limit must disable the parallel kernel even below threshold — the run
// still succeeds and counts exactly like the interpreter with the same
// limit.
func TestMaxDepthForcesSerial(t *testing.T) {
	lim := eval.Limits{MaxDepth: 10_000}
	c := New(nil)
	c.Threshold = 1
	c.Workers = 8
	c.Limits = lim
	i := eval.New(nil)
	i.Limits = lim

	expr := bigTab(200, 200)
	cv, err := c.EvalExpr(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := i.EvalExpr(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(cv, iv) {
		t.Error("values differ under MaxDepth")
	}
	if cc, ic := c.Counters(), i.Counters(); cc != ic {
		t.Errorf("counters differ under MaxDepth: compiled %+v, interp %+v", cc, ic)
	}
}
