package compile

import (
	"time"

	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// profWrap wraps a compiled node closure in span recording; emitted by
// compile only for nodes the span plan covers, so at ProfOff the engine's
// code is exactly the unprofiled closures. The wrapper reads the machine's
// profiling context at run time (not compile time) because closures escape
// evaluations: a top-level val of function type compiled under profiling
// may later run on a machine — or from a parallel worker — where profiling
// is off, and must then cost nothing but the nil check.
//
// The accounting mirrors eval.Evaluator.evalSpan exactly: count the
// invocation; on measured invocations snapshot the machine counters and
// exchange the context's Child* accumulators around the execution, so self
// time and self counters exclude profiled descendants.
func profWrap(op compiledExpr, id int) compiledExpr {
	return func(fr *frame) (object.Value, error) {
		m := fr.m
		p := m.prof
		if p == nil {
			return op(fr)
		}
		s := &p.Slots[id]
		inv := s.Inv.Add(1)
		if !p.Full && (inv-1)&(eval.SampleInterval-1) != 0 {
			return op(fr)
		}
		steps0 := m.steps.Load()
		cells0 := m.cells.Load()
		tabs0 := m.tabs.Load()
		setOps0 := m.setOps.Load()
		iters0 := m.iters.Load()
		savedWall := p.ChildWallNs.Swap(0)
		savedSteps := p.ChildSteps.Swap(0)
		savedCells := p.ChildCells.Swap(0)
		savedTabs := p.ChildTabs.Swap(0)
		savedSetOps := p.ChildSetOps.Swap(0)
		savedIters := p.ChildIters.Swap(0)
		t0 := time.Now()
		v, err := op(fr)
		d := int64(time.Since(t0))
		dSteps := m.steps.Load() - steps0
		dCells := m.cells.Load() - cells0
		dTabs := m.tabs.Load() - tabs0
		dSetOps := m.setOps.Load() - setOps0
		dIters := m.iters.Load() - iters0
		s.Measured.Add(1)
		s.WallNs.Add(d)
		s.SelfNs.Add(d - p.ChildWallNs.Load())
		s.Steps.Add(dSteps - p.ChildSteps.Load())
		s.Cells.Add(dCells - p.ChildCells.Load())
		s.Tabs.Add(dTabs - p.ChildTabs.Load())
		s.SetOps.Add(dSetOps - p.ChildSetOps.Load())
		s.Iters.Add(dIters - p.ChildIters.Load())
		p.ChildWallNs.Store(savedWall + d)
		p.ChildSteps.Store(savedSteps + dSteps)
		p.ChildCells.Store(savedCells + dCells)
		p.ChildTabs.Store(savedTabs + dTabs)
		p.ChildSetOps.Store(savedSetOps + dSetOps)
		p.ChildIters.Store(savedIters + dIters)
		return v, err
	}
}
