package compile

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

func param(name string) ast.Expr { return &ast.Param{Name: name} }

// paramTab builds [[ (i*i + $a*i + $b) % 97 | i < n ]] — the templated
// workload shape: one plan, per-execution coefficients.
func paramTab(n int64) *ast.ArrayTab {
	return &ast.ArrayTab{
		Head: &ast.Arith{
			Op: ast.OpMod,
			L: &ast.Arith{Op: ast.OpAdd,
				L: &ast.Arith{Op: ast.OpMul, L: v("i"), R: v("i")},
				R: &ast.Arith{Op: ast.OpAdd,
					L: &ast.Arith{Op: ast.OpMul, L: param("a"), R: v("i")},
					R: param("b")}},
			R: nat(97),
		},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(n)},
	}
}

// litTab is paramTab with the arguments substituted as literals — the
// counter-identity reference: a placeholder read must cost exactly what a
// literal leaf costs.
func litTab(n, a, b int64) *ast.ArrayTab {
	return &ast.ArrayTab{
		Head: &ast.Arith{
			Op: ast.OpMod,
			L: &ast.Arith{Op: ast.OpAdd,
				L: &ast.Arith{Op: ast.OpMul, L: v("i"), R: v("i")},
				R: &ast.Arith{Op: ast.OpAdd,
					L: &ast.Arith{Op: ast.OpMul, L: nat(a), R: v("i")},
					R: nat(b)}},
			R: nat(97),
		},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(n)},
	}
}

// TestParamVsLiteralIdentity: one parameterized Program executed with an
// argument frame is byte-identical — value and all five counters — to a
// fresh program with the arguments baked in as literals.
func TestParamVsLiteralIdentity(t *testing.T) {
	ctx := context.Background()
	pp := NewProgram(paramTab(500), nil, eval.Limits{})
	for _, c := range [][2]int64{{3, 5}, {11, 0}, {0, 96}} {
		args := map[string]object.Value{"a": object.Nat(c[0]), "b": object.Nat(c[1])}
		gv, gc, err := pp.Execute(ctx, ExecOpts{Args: args})
		if err != nil {
			t.Fatalf("param execute(%v): %v", c, err)
		}
		lp := NewProgram(litTab(500, c[0], c[1]), nil, eval.Limits{})
		wv, wc, err := lp.Execute(ctx, ExecOpts{})
		if err != nil {
			t.Fatalf("literal execute(%v): %v", c, err)
		}
		if gv.String() != wv.String() {
			t.Errorf("args %v: value differs:\nparam   %.120s\nliteral %.120s", c, gv, wv)
		}
		if gc != wc {
			t.Errorf("args %v: counters differ:\nparam   %+v\nliteral %+v", c, gc, wc)
		}
	}
}

// TestParamNames: slot assignment is first-use order and ParamNames reports
// every placeholder the program reads.
func TestParamNames(t *testing.T) {
	p := NewProgram(paramTab(10), nil, eval.Limits{})
	names := p.ParamNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ParamNames = %v, want [a b]", names)
	}
	if n := NewProgram(litTab(10, 1, 2), nil, eval.Limits{}).ParamNames(); n != nil {
		t.Fatalf("literal program ParamNames = %v, want nil", n)
	}
}

// TestParamUnbound: executing without a required argument is a lazy,
// deterministic evaluation error naming the placeholder.
func TestParamUnbound(t *testing.T) {
	p := NewProgram(paramTab(10), nil, eval.Limits{})
	_, _, err := p.Execute(context.Background(), ExecOpts{
		Args: map[string]object.Value{"a": object.Nat(1)},
	})
	if err == nil || !strings.Contains(err.Error(), "unbound parameter $b") {
		t.Fatalf("err = %v, want unbound parameter $b", err)
	}
}

// TestParamConcurrentExec: one immutable Program, many concurrent
// executions with distinct argument frames — each must see exactly its own
// frame (run under -race). This is the property that lets a server serve
// every argument set of a template from a single cached plan.
func TestParamConcurrentExec(t *testing.T) {
	ctx := context.Background()
	pp := NewProgram(paramTab(200), nil, eval.Limits{})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a, b := int64(g*2+1), int64(g*3)
			args := map[string]object.Value{"a": object.Nat(a), "b": object.Nat(b)}
			for iter := 0; iter < 20; iter++ {
				gv, _, err := pp.Execute(ctx, ExecOpts{Args: args})
				if err != nil {
					errs[g] = err
					return
				}
				wv, _, err := NewProgram(litTab(200, a, b), nil, eval.Limits{}).Execute(ctx, ExecOpts{})
				if err != nil {
					errs[g] = err
					return
				}
				if gv.String() != wv.String() {
					errs[g] = fmt.Errorf("goroutine %d: cross-talk: param result != literal result", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// letsOver wraps core in a chain of let bindings, outermost first, in the
// desugared form let produces: App{Lam{x, body}, bound}.
func letsOver(core ast.Expr, lets ...[2]any) ast.Expr {
	e := core
	for i := len(lets) - 1; i >= 0; i-- {
		e = &ast.App{
			Fn:  &ast.Lam{Param: lets[i][0].(string), Body: e},
			Arg: lets[i][1].(ast.Expr),
		}
	}
	return e
}

// TestPlanShardsThroughLets: a tabulation under a chain of top-level let
// bindings — the shape the optimizer's loop-invariant hoisting produces —
// stays range-partitionable, and PlanShards + ExecuteRange over any
// partition reassembles to byte-identical values and exactly the counters
// of a whole-program Execute.
func TestPlanShardsThroughLets(t *testing.T) {
	ctx := context.Background()
	// let c = 6*7 in let d = c+3 in [[ (i*c + d) % 101 | i < 300 ]]
	tab := &ast.ArrayTab{
		Head: &ast.Arith{Op: ast.OpMod,
			L: &ast.Arith{Op: ast.OpAdd,
				L: &ast.Arith{Op: ast.OpMul, L: v("i"), R: v("c")},
				R: v("d")},
			R: nat(101)},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(300)},
	}
	expr := letsOver(tab,
		[2]any{"c", ast.Expr(&ast.Arith{Op: ast.OpMul, L: nat(6), R: nat(7)})},
		[2]any{"d", ast.Expr(&ast.Arith{Op: ast.OpAdd, L: v("c"), R: nat(3)})},
	)
	p := NewProgram(expr, nil, eval.Limits{})
	if !p.Rangeable() {
		t.Fatal("let-wrapped tabulation is not rangeable")
	}

	want, wantCnt, err := p.Execute(ctx, ExecOpts{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}

	for _, nshards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", nshards), func(t *testing.T) {
			plan, err := p.PlanShards(ctx, ExecOpts{})
			if err != nil {
				t.Fatalf("PlanShards: %v", err)
			}
			if plan.Size != 300 {
				t.Fatalf("plan size = %d, want 300", plan.Size)
			}
			merged := plan.Counters
			data := make([]object.Value, plan.Size)
			for _, r := range splitRange(plan.Size, nshards) {
				res, err := p.ExecuteRange(ctx, ExecOpts{}, plan.Shape, r[0], r[1])
				if err != nil {
					t.Fatalf("ExecuteRange[%d,%d): %v", r[0], r[1], err)
				}
				copy(data[r[0]:r[1]], res.Values)
				merged.Steps += res.Counters.Steps
				merged.Cells += res.Counters.Cells
				merged.Tabs += res.Counters.Tabs
				merged.SetOps += res.Counters.SetOps
				merged.Iters += res.Counters.Iters
			}
			got := object.Value{Kind: object.KArray, Shape: plan.Shape, Data: data}
			if got.String() != want.String() {
				t.Errorf("merged value differs:\n got %.120s\nwant %.120s", got, want)
			}
			if merged != wantCnt {
				t.Errorf("merged counters = %+v, want %+v", merged, wantCnt)
			}
		})
	}
}

// TestPlanShardsLetsAndParams: lets and placeholders compose — the bound
// expressions may read the argument frame, and the range path must still
// reassemble exactly.
func TestPlanShardsLetsAndParams(t *testing.T) {
	ctx := context.Background()
	// let c = $a * 7 in [[ (i*c + $b) % 89 | i < 120 ]]
	tab := &ast.ArrayTab{
		Head: &ast.Arith{Op: ast.OpMod,
			L: &ast.Arith{Op: ast.OpAdd,
				L: &ast.Arith{Op: ast.OpMul, L: v("i"), R: v("c")},
				R: param("b")},
			R: nat(89)},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(120)},
	}
	expr := letsOver(tab,
		[2]any{"c", ast.Expr(&ast.Arith{Op: ast.OpMul, L: param("a"), R: nat(7)})},
	)
	p := NewProgram(expr, nil, eval.Limits{})
	if !p.Rangeable() {
		t.Fatal("let-wrapped parameterized tabulation is not rangeable")
	}
	opts := ExecOpts{Args: map[string]object.Value{"a": object.Nat(2), "b": object.Nat(31)}}

	want, wantCnt, err := p.Execute(ctx, opts)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	plan, err := p.PlanShards(ctx, opts)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	merged := plan.Counters
	data := make([]object.Value, plan.Size)
	for _, r := range splitRange(plan.Size, 3) {
		res, err := p.ExecuteRange(ctx, opts, plan.Shape, r[0], r[1])
		if err != nil {
			t.Fatalf("ExecuteRange[%d,%d): %v", r[0], r[1], err)
		}
		copy(data[r[0]:r[1]], res.Values)
		merged.Steps += res.Counters.Steps
		merged.Cells += res.Counters.Cells
		merged.Tabs += res.Counters.Tabs
		merged.SetOps += res.Counters.SetOps
		merged.Iters += res.Counters.Iters
	}
	got := object.Value{Kind: object.KArray, Shape: plan.Shape, Data: data}
	if got.String() != want.String() {
		t.Errorf("merged value differs:\n got %.120s\nwant %.120s", got, want)
	}
	if merged != wantCnt {
		t.Errorf("merged counters = %+v, want %+v", merged, wantCnt)
	}
}

// TestPlanShardsBottomLet: a ⊥ let binding decides the query during
// planning, exactly as a ⊥ bound does.
func TestPlanShardsBottomLet(t *testing.T) {
	tab := &ast.ArrayTab{
		Head:   v("c"),
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(10)},
	}
	expr := letsOver(tab,
		[2]any{"c", ast.Expr(&ast.Arith{Op: ast.OpDiv, L: nat(1), R: nat(0)})},
	)
	p := NewProgram(expr, nil, eval.Limits{})
	plan, err := p.PlanShards(context.Background(), ExecOpts{})
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if !plan.Bottom.IsBottom() {
		t.Fatalf("plan.Bottom = %s, want ⊥", plan.Bottom)
	}
	// The whole-program path must agree.
	want, _, err := p.Execute(context.Background(), ExecOpts{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if plan.Bottom.String() != want.String() {
		t.Errorf("plan ⊥ %s != execute ⊥ %s", plan.Bottom, want)
	}
}
