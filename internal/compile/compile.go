// Package compile is the compiled execution engine: it lowers optimized
// NRCA core expressions into Go closures (compiledExpr) connected by direct
// calls, with a resolve pass that replaces the interpreter's name-searched
// environment lookup by integer slot indices into a flat frame.
//
// The engine implements eval.Engine and is observationally identical to the
// tree-walking interpreter (eval.Evaluator): same values byte for byte in
// the exchange format, same ⊥ diagnostics, same error strings, same
// step/cell/tabulation counters. The differential tests at the module root
// hold the two engines to that contract over the full construct corpus.
//
// What makes it faster:
//
//   - Dispatch happens once, at compile time. Executing a node is one
//     indirect call instead of a type switch, and the per-node step charge
//     is an inlined counter bump whose budget checks are compiled out when
//     no step budget is configured.
//   - Variable access is fr.slots[i] instead of walking an Env linked list,
//     and loop constructs (big unions, summation, tabulation) rebind their
//     variable by overwriting one slot instead of allocating an Env node
//     per iteration.
//   - Globals are resolved at compile time (compilation and execution are
//     one EvalExpr call over an immutable snapshot of the globals), and
//     arithmetic/comparison nodes carry a natural-number fast path.
//   - Tabulations of at least Engine.Threshold cells fan out across
//     GOMAXPROCS workers (see parallel.go); elements are pure in the index
//     valuation, which makes the split sound.
package compile

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// compiledExpr is the unit of compiled code: evaluate in a frame, yielding
// a value or an error, with ⊥ passed as a value exactly as in the
// interpreter. Every compiled node charges its own step as its first
// action, mirroring the interpreter's per-node guard in Eval.
type compiledExpr func(fr *frame) (object.Value, error)

// DefaultThreshold is the tabulation size, in cells, at or above which the
// engine fans element evaluation out across workers. Below it the
// per-element work rarely amortizes goroutine startup and result stitching.
const DefaultThreshold = 8192

// Engine compiles and runs core expressions; it implements eval.Engine.
// The zero value is not ready: use New. Fields mirror the knobs of
// eval.Evaluator so the REPL can configure either engine uniformly.
type Engine struct {
	// Globals maps registered primitives and top-level vals to values; the
	// compiler resolves global references against this snapshot.
	Globals map[string]object.Value
	// MaxSteps, when positive, aborts evaluation after that many steps.
	// Limits.MaxSteps is honored as well; either tripping aborts.
	MaxSteps int64
	// Limits bounds the resources of an evaluation; zero is unlimited.
	Limits eval.Limits
	// Threshold overrides DefaultThreshold when positive; negative disables
	// parallel tabulation entirely (everything runs on the calling
	// goroutine, which also makes step budgets exact).
	Threshold int
	// Workers caps tabulation fan-out; 0 means GOMAXPROCS.
	Workers int
	// Params holds the argument frame for $name placeholders, mirroring
	// eval.Evaluator.Params: an unbound placeholder is an error only if
	// evaluated.
	Params map[string]object.Value

	m *machine

	// profLevel selects operator-level span profiling (see eval.ProfLevel);
	// lastSpans is the folded tree of the most recent EvalExpr.
	profLevel eval.ProfLevel
	lastSpans *eval.SpanNode
}

// SetProfiling selects the span-profiling level for subsequent EvalExpr
// calls; part of eval.SpanProfiler.
func (e *Engine) SetProfiling(l eval.ProfLevel) { e.profLevel = l }

// Profiling reports the engine's profiling level; part of eval.SpanProfiler.
func (e *Engine) Profiling() eval.ProfLevel { return e.profLevel }

// SpanTree returns the span tree of the most recent EvalExpr, or nil when
// profiling was off; part of eval.SpanProfiler.
func (e *Engine) SpanTree() *eval.SpanNode { return e.lastSpans }

// New returns a compiled engine over the given globals (which may be nil).
func New(globals map[string]object.Value) *Engine {
	if globals == nil {
		globals = map[string]object.Value{}
	}
	return &Engine{Globals: globals}
}

// Name identifies the compiled engine; part of eval.Engine.
func (e *Engine) Name() string { return "compiled" }

// Counters reports the work charged by the most recent EvalExpr; part of
// eval.Engine.
func (e *Engine) Counters() eval.Counters {
	if e.m == nil {
		return eval.Counters{}
	}
	return e.m.counters()
}

// EvalExpr compiles expr and runs it under ctx; part of eval.Engine.
// Compilation never fails: statically unresolvable constructs compile to
// code that errors when (and only when) executed, matching the
// interpreter's behavior of erroring on an unbound variable only if it is
// actually evaluated.
func (e *Engine) EvalExpr(ctx context.Context, expr ast.Expr) (object.Value, error) {
	// Profiling is decided at closure-compile time: at ProfOff no plan
	// exists and compile emits exactly the unprofiled closures, so the off
	// level costs nothing at execution time.
	e.lastSpans = nil
	c := &compiler{globals: e.Globals, limits: e.Limits, prof: eval.NewSpanPlan(expr, e.profLevel), params: &paramTable{}}
	code := c.compile(expr)

	m := &machine{
		limits:    e.Limits,
		maxSteps:  e.MaxSteps,
		workers:   e.Workers,
		threshold: int64(e.Threshold),
		stepMask:  eval.InterruptInterval - 1,
	}
	if e.MaxSteps > 0 || e.Limits.MaxSteps > 0 {
		m.stepMask = 0
	}
	if m.workers <= 0 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	if e.Threshold == 0 {
		m.threshold = DefaultThreshold
	}
	// Depth tracking is serial state on the machine, so a MaxDepth limit
	// forces serial tabulation; correctness beats parallelism here.
	if e.Threshold < 0 || e.Limits.MaxDepth > 0 {
		m.threshold = math.MaxInt64
	}
	m.ctx = ctx
	if e.Limits.Timeout > 0 {
		m.deadline = time.Now().Add(e.Limits.Timeout)
	}
	m.args, m.argOK = c.params.resolve(e.Params)
	// Clear the interrupt state on the way out, as EvalCtx does: closures
	// that escape this evaluation capture the machine, and a later call
	// through them must not observe a stale context or deadline. The
	// profiling context is cleared for the same reason, after folding the
	// accumulated span tree (even on error, so partial evaluations report).
	m.prof = eval.NewProfCtx(c.prof)
	defer func() {
		m.ctx = nil
		m.deadline = time.Time{}
		if m.prof != nil {
			e.lastSpans = m.prof.Fold()
			m.prof = nil
		}
	}()
	e.m = m
	fr := &frame{m: m, slots: make([]object.Value, c.maxSlots)}
	return code(fr)
}

// compiler is the resolve pass state: scope is the stack of bound variable
// names, and a name's slot is its position in scope at bind time. maxSlots
// is the high-water mark, i.e. the frame size the compiled code needs.
type compiler struct {
	globals  map[string]object.Value
	limits   eval.Limits
	scope    []string
	maxSlots int
	// prof is the evaluation's span plan (nil when profiling is off);
	// compile wraps every planned node in a span-recording closure.
	prof *eval.SpanPlan
	// params is the program-wide placeholder table, shared by pointer with
	// every sub-compiler so one $name resolves to one argument-frame index.
	params *paramTable
}

// bind pushes a binder and returns its slot.
func (c *compiler) bind(name string) int {
	c.scope = append(c.scope, name)
	if len(c.scope) > c.maxSlots {
		c.maxSlots = len(c.scope)
	}
	return len(c.scope) - 1
}

// unbind pops the n innermost binders.
func (c *compiler) unbind(n int) { c.scope = c.scope[:len(c.scope)-n] }

// lookup resolves a name to its slot, innermost binding first.
func (c *compiler) lookup(name string) (int, bool) {
	for i := len(c.scope) - 1; i >= 0; i-- {
		if c.scope[i] == name {
			return i, true
		}
	}
	return 0, false
}

// compile lowers e to a closure, adding the recursion-depth guard around
// every node when a depth limit is configured. The guard is a separate
// wrapper (rather than logic in the hot path) because depth limits are a
// debugging guardrail: the common case pays nothing for them.
func (c *compiler) compile(e ast.Expr) compiledExpr {
	op := c.compileNode(e)
	if max := c.limits.MaxDepth; max > 0 {
		inner := op
		op = func(fr *frame) (object.Value, error) {
			m := fr.m
			m.depth++
			if m.depth > max {
				m.depth--
				return object.Value{}, &eval.ResourceError{Kind: eval.ResourceDepth, Limit: int64(max), Used: int64(max) + 1}
			}
			v, err := inner(fr)
			m.depth--
			return v, err
		}
	}
	// The span wrapper sits outside the depth guard so profiled invocation
	// counts match the interpreter, whose span hook precedes its depth
	// check.
	if c.prof != nil {
		if id, ok := c.prof.ID(e); ok {
			op = profWrap(op, id)
		}
	}
	return op
}

// compileNode lowers one node. Counter-charging points, kind checks, ⊥
// propagation and error strings follow eval.Evaluator.eval case by case;
// any divergence there is a bug that the differential suite is designed to
// catch.
func (c *compiler) compileNode(e ast.Expr) compiledExpr {
	switch n := e.(type) {
	case *ast.Var:
		if slot, ok := c.lookup(n.Name); ok {
			return func(fr *frame) (object.Value, error) {
				if err := fr.m.step(); err != nil {
					return object.Value{}, err
				}
				return fr.slots[slot], nil
			}
		}
		if v, ok := c.globals[n.Name]; ok {
			return func(fr *frame) (object.Value, error) {
				if err := fr.m.step(); err != nil {
					return object.Value{}, err
				}
				return v, nil
			}
		}
		name := n.Name
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return object.Value{}, fmt.Errorf("eval: unbound variable %q", name)
		}

	case *ast.Param:
		// A placeholder costs exactly what a literal leaf costs — one step,
		// no cells — so a prepared execution's counters are byte-identical
		// to the same query with the argument substituted as a literal.
		idx := c.params.slot(n.Name)
		name := n.Name
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			m := fr.m
			if idx < len(m.argOK) && m.argOK[idx] {
				return m.args[idx], nil
			}
			return object.Value{}, fmt.Errorf("eval: unbound parameter $%s", name)
		}

	case *ast.Lam:
		return c.compileLam(n)

	case *ast.App:
		fn := c.compile(n.Fn)
		arg := c.compile(n.Arg)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			f, err := fn(fr)
			if err != nil {
				return object.Value{}, err
			}
			if f.IsBottom() {
				return f, nil
			}
			a, err := arg(fr)
			if err != nil {
				return object.Value{}, err
			}
			if a.IsBottom() {
				return a, nil
			}
			if f.Kind != object.KFunc {
				return object.Value{}, fmt.Errorf("eval: application of non-function %s", f.Kind)
			}
			return f.Fn(a)
		}

	case *ast.Tuple:
		elems := make([]compiledExpr, len(n.Elems))
		for i, x := range n.Elems {
			elems[i] = c.compile(x)
		}
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			vs := make([]object.Value, len(elems))
			for i, el := range elems {
				v, err := el(fr)
				if err != nil {
					return object.Value{}, err
				}
				if v.IsBottom() {
					return v, nil
				}
				vs[i] = v
			}
			return object.Tuple(vs...), nil
		}

	case *ast.Proj:
		tup := c.compile(n.Tuple)
		i := n.I - 1
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			v, err := tup(fr)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			return v.Proj(i)
		}

	case *ast.EmptySet:
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return object.EmptySet, nil
		}

	case *ast.Singleton:
		elem := c.compile(n.Elem)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			v, err := elem(fr)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			if err := fr.m.chargeCells(1); err != nil {
				return object.Value{}, err
			}
			return object.Set(v), nil
		}

	case *ast.Union:
		l, r := c.compile(n.L), c.compile(n.R)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return binaryUnion(fr, l, r, object.Union)
		}

	case *ast.BigUnion:
		return c.compileBigUnion(n.Head, n.Var, n.Over, false)

	case *ast.Get:
		set := c.compile(n.Set)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			s, err := set(fr)
			if err != nil {
				return object.Value{}, err
			}
			if s.IsBottom() {
				return s, nil
			}
			return eval.GetValue(s)
		}

	case *ast.BoolLit:
		v := object.Bool(n.Val)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return v, nil
		}

	case *ast.If:
		cond := c.compile(n.Cond)
		then := c.compile(n.Then)
		els := c.compile(n.Else)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			cv, err := cond(fr)
			if err != nil {
				return object.Value{}, err
			}
			if cv.IsBottom() {
				return cv, nil
			}
			if cv.Kind != object.KBool {
				b, err := cv.AsBool()
				if err != nil {
					return object.Value{}, fmt.Errorf("eval: if condition: %w", err)
				}
				if b {
					return then(fr)
				}
				return els(fr)
			}
			if cv.B {
				return then(fr)
			}
			return els(fr)
		}

	case *ast.Cmp:
		l, r := c.compile(n.L), c.compile(n.R)
		op := n.Op
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			lv, err := l(fr)
			if err != nil {
				return object.Value{}, err
			}
			if lv.IsBottom() {
				return lv, nil
			}
			rv, err := r(fr)
			if err != nil {
				return object.Value{}, err
			}
			if rv.IsBottom() {
				return rv, nil
			}
			// Natural-number fast path; object.Compare on two nats is
			// exactly this comparison.
			if lv.Kind == object.KNat && rv.Kind == object.KNat {
				a, b := lv.N, rv.N
				switch op {
				case ast.OpEq:
					return object.Bool(a == b), nil
				case ast.OpNe:
					return object.Bool(a != b), nil
				case ast.OpLt:
					return object.Bool(a < b), nil
				case ast.OpGt:
					return object.Bool(a > b), nil
				case ast.OpLe:
					return object.Bool(a <= b), nil
				case ast.OpGe:
					return object.Bool(a >= b), nil
				}
			}
			return eval.EvalCmp(op, lv, rv)
		}

	case *ast.NatLit:
		v := object.Nat(n.Val)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return v, nil
		}

	case *ast.RealLit:
		v := object.Real(n.Val)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return v, nil
		}

	case *ast.StringLit:
		v := object.String_(n.Val)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return v, nil
		}

	case *ast.Arith:
		l, r := c.compile(n.L), c.compile(n.R)
		op := n.Op
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			lv, err := l(fr)
			if err != nil {
				return object.Value{}, err
			}
			if lv.IsBottom() {
				return lv, nil
			}
			rv, err := r(fr)
			if err != nil {
				return object.Value{}, err
			}
			if rv.IsBottom() {
				return rv, nil
			}
			// Natural-number fast path, semantically identical to
			// eval.Arith's nat/nat case (monus, ⊥ on division by zero).
			if lv.Kind == object.KNat && rv.Kind == object.KNat {
				a, b := lv.N, rv.N
				switch op {
				case ast.OpAdd:
					return object.Nat(a + b), nil
				case ast.OpSub:
					if a < b {
						return object.Nat(0), nil
					}
					return object.Nat(a - b), nil
				case ast.OpMul:
					return object.Nat(a * b), nil
				case ast.OpDiv:
					if b == 0 {
						return object.Bottom("division by zero"), nil
					}
					return object.Nat(a / b), nil
				case ast.OpMod:
					if b == 0 {
						return object.Bottom("modulus by zero"), nil
					}
					return object.Nat(a % b), nil
				}
			}
			return eval.Arith(op, lv, rv)
		}

	case *ast.Gen:
		bound := c.compile(n.N)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			v, err := bound(fr)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			m, err := v.AsNat()
			if err != nil {
				return object.Value{}, fmt.Errorf("eval: gen: %w", err)
			}
			fr.m.setOps.Add(1)
			if err := fr.m.chargeCells(m); err != nil {
				return object.Value{}, err
			}
			return eval.GenSet(m), nil
		}

	case *ast.Sum:
		over := c.compile(n.Over)
		slot := c.bind(n.Var)
		head := c.compile(n.Head)
		c.unbind(1)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			s, err := over(fr)
			if err != nil {
				return object.Value{}, err
			}
			if s.IsBottom() {
				return s, nil
			}
			if s.Kind != object.KSet && s.Kind != object.KBag {
				return object.Value{}, fmt.Errorf("eval: sum over %s", s.Kind)
			}
			var acc eval.SumAcc
			fr.m.iters.Add(int64(len(s.Elems)))
			for _, x := range s.Elems {
				fr.slots[slot] = x
				v, err := head(fr)
				if err != nil {
					return object.Value{}, err
				}
				if v.IsBottom() {
					return v, nil
				}
				if err := acc.Add(v); err != nil {
					return object.Value{}, err
				}
			}
			return acc.Value(), nil
		}

	case *ast.ArrayTab:
		return c.compileArrayTab(n)

	case *ast.Subscript:
		arr := c.compile(n.Arr)
		// Matrix subscripts a[(e1,e2)] are fused: the index components feed
		// a direct offset computation without materializing the pair. Not
		// done under a depth limit, where the elided tuple node would skew
		// the depth accounting relative to the interpreter, nor at ProfFull,
		// where the elided tuple node must keep its span so both engines
		// report the same tree. (At ProfSampled the tuple carries no span
		// and the components are compiled through c.compile, keeping
		// theirs, so fusion stays.)
		if tup, ok := n.Index.(*ast.Tuple); ok && len(tup.Elems) == 2 && c.limits.MaxDepth == 0 &&
			(c.prof == nil || c.prof.Level != eval.ProfFull) {
			return c.compileSubscript2(arr, tup)
		}
		index := c.compile(n.Index)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			a, err := arr(fr)
			if err != nil {
				return object.Value{}, err
			}
			if a.IsBottom() {
				return a, nil
			}
			i, err := index(fr)
			if err != nil {
				return object.Value{}, err
			}
			if i.IsBottom() {
				return i, nil
			}
			// One-dimensional nat subscript fast path; object.SubValue
			// reaches the same element through IndexOf+flatten.
			if a.Kind == object.KArray && len(a.Shape) == 1 && i.Kind == object.KNat {
				if i.N >= int64(a.Shape[0]) {
					return object.Bottom(fmt.Sprintf("index [%d] out of bounds for shape %v", i.N, a.Shape)), nil
				}
				return a.CellAtCtx(fr.m.ctx, int(i.N))
			}
			return object.SubValueCtx(fr.m.ctx, a, i)
		}

	case *ast.Dim:
		arr := c.compile(n.Arr)
		k := n.K
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			a, err := arr(fr)
			if err != nil {
				return object.Value{}, err
			}
			if a.IsBottom() {
				return a, nil
			}
			return eval.CheckedDim(a, k)
		}

	case *ast.Index:
		set := c.compile(n.Set)
		k := n.K
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			fr.m.setOps.Add(1)
			s, err := set(fr)
			if err != nil {
				return object.Value{}, err
			}
			if s.IsBottom() {
				return s, nil
			}
			return object.IndexChecked(s, k, fr.m.chargeCells)
		}

	case *ast.MkArray:
		dims := make([]compiledExpr, len(n.Dims))
		for j, d := range n.Dims {
			dims[j] = c.compile(d)
		}
		elems := make([]compiledExpr, len(n.Elems))
		for i, x := range n.Elems {
			elems[i] = c.compile(x)
		}
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			shape := make([]int, len(dims))
			size := 1
			for j, d := range dims {
				v, err := d(fr)
				if err != nil {
					return object.Value{}, err
				}
				if v.IsBottom() {
					return v, nil
				}
				m, err := v.AsNat()
				if err != nil {
					return object.Value{}, fmt.Errorf("eval: array literal dimension %d: %w", j+1, err)
				}
				shape[j] = int(m)
				size *= int(m)
			}
			if size != len(elems) {
				return object.Bottom(fmt.Sprintf("array literal: %d values for shape %v", len(elems), shape)), nil
			}
			if err := fr.m.chargeCells(int64(len(elems))); err != nil {
				return object.Value{}, err
			}
			data := make([]object.Value, len(elems))
			for i, el := range elems {
				v, err := el(fr)
				if err != nil {
					return object.Value{}, err
				}
				if v.IsBottom() {
					return v, nil
				}
				data[i] = v
			}
			return object.Array(shape, data)
		}

	case *ast.Bottom:
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return object.Bottom("explicit bottom"), nil
		}

	case *ast.EmptyBag:
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return object.EmptyBag, nil
		}

	case *ast.SingletonBag:
		elem := c.compile(n.Elem)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			v, err := elem(fr)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			if err := fr.m.chargeCells(1); err != nil {
				return object.Value{}, err
			}
			return object.Bag(v), nil
		}

	case *ast.BagUnion:
		l, r := c.compile(n.L), c.compile(n.R)
		return func(fr *frame) (object.Value, error) {
			if err := fr.m.step(); err != nil {
				return object.Value{}, err
			}
			return binaryUnion(fr, l, r, object.BagUnion)
		}

	case *ast.BigBagUnion:
		return c.compileBigUnion(n.Head, n.Var, n.Over, true)

	case *ast.RankUnion:
		return c.compileRankUnion(n.Head, n.Var, n.RankVar, n.Over, false)

	case *ast.RankBagUnion:
		return c.compileRankUnion(n.Head, n.Var, n.RankVar, n.Over, true)
	}

	name := ast.NodeName(e)
	return func(fr *frame) (object.Value, error) {
		if err := fr.m.step(); err != nil {
			return object.Value{}, err
		}
		return object.Value{}, fmt.Errorf("eval: unhandled node %s", name)
	}
}

// binaryUnion runs the shared shape of e1 ∪ e2 and e1 ⊎ e2: the set-op
// charge precedes the operand evaluations, matching the interpreter.
func binaryUnion(fr *frame, l, r compiledExpr, merge func(a, b object.Value) (object.Value, error)) (object.Value, error) {
	fr.m.setOps.Add(1)
	lv, err := l(fr)
	if err != nil {
		return object.Value{}, err
	}
	if lv.IsBottom() {
		return lv, nil
	}
	rv, err := r(fr)
	if err != nil {
		return object.Value{}, err
	}
	if rv.IsBottom() {
		return rv, nil
	}
	if err := fr.m.chargeCells(int64(len(lv.Elems) + len(rv.Elems))); err != nil {
		return object.Value{}, err
	}
	return merge(lv, rv)
}

// compileSubscript2 lowers a[(e1,e2)] without materializing the index
// tuple: the components land in locals and feed a row-major offset
// directly. Step charges replicate the unfused shape exactly — one for the
// subscript node, one for the tuple node, then the components — and any
// case the fast path does not cover (non-array, non-nat components, higher
// arity) rebuilds the tuple and takes the interpreter's object.SubValue
// route, so diagnostics are identical.
func (c *compiler) compileSubscript2(arr compiledExpr, tup *ast.Tuple) compiledExpr {
	e0 := c.compile(tup.Elems[0])
	e1 := c.compile(tup.Elems[1])
	return func(fr *frame) (object.Value, error) {
		if err := fr.m.step(); err != nil {
			return object.Value{}, err
		}
		a, err := arr(fr)
		if err != nil {
			return object.Value{}, err
		}
		if a.IsBottom() {
			return a, nil
		}
		if err := fr.m.step(); err != nil { // the tuple node's step
			return object.Value{}, err
		}
		v0, err := e0(fr)
		if err != nil {
			return object.Value{}, err
		}
		if v0.IsBottom() {
			return v0, nil
		}
		v1, err := e1(fr)
		if err != nil {
			return object.Value{}, err
		}
		if v1.IsBottom() {
			return v1, nil
		}
		if a.Kind == object.KArray && len(a.Shape) == 2 && v0.Kind == object.KNat && v1.Kind == object.KNat {
			i, j := v0.N, v1.N
			if i < int64(a.Shape[0]) && j < int64(a.Shape[1]) {
				return a.CellAtCtx(fr.m.ctx, int(i*int64(a.Shape[1])+j))
			}
			return object.Bottom(fmt.Sprintf("index %v out of bounds for shape %v", []int{int(i), int(j)}, a.Shape)), nil
		}
		return object.SubValueCtx(fr.m.ctx, a, object.Tuple(v0, v1))
	}
}

// compileLam performs closure conversion: the lambda's free variables that
// are locally bound get dedicated capture slots [0..ncap) in the body's
// frame layout, the parameter lands at slot ncap, and closure creation
// copies the captured slots by value. Copying is sound because frames are
// only mutated by rebinding a binder, and the interpreter's persistent
// environments likewise freeze the captured bindings at creation time.
func (c *compiler) compileLam(n *ast.Lam) compiledExpr {
	fv := ast.FreeVars(n)
	var capNames []string
	var capSlots []int
	seen := make(map[string]bool)
	for i := len(c.scope) - 1; i >= 0; i-- {
		name := c.scope[i]
		if seen[name] || !fv[name] {
			continue
		}
		seen[name] = true
		capNames = append(capNames, name)
		capSlots = append(capSlots, i)
	}
	sub := &compiler{globals: c.globals, limits: c.limits, prof: c.prof, params: c.params}
	sub.scope = append(sub.scope, capNames...)
	sub.scope = append(sub.scope, n.Param)
	sub.maxSlots = len(sub.scope)
	body := sub.compile(n.Body)
	frameSize := sub.maxSlots
	ncap := len(capSlots)
	return func(fr *frame) (object.Value, error) {
		if err := fr.m.step(); err != nil {
			return object.Value{}, err
		}
		captured := make([]object.Value, ncap)
		for i, s := range capSlots {
			captured[i] = fr.slots[s]
		}
		m := fr.m
		return object.Func(func(arg object.Value) (object.Value, error) {
			slots := make([]object.Value, frameSize)
			copy(slots, captured)
			slots[ncap] = arg
			return body(&frame{m: m, slots: slots})
		}), nil
	}
}

// compileBigUnion lowers ⋃{ head | var ∈ over } and its bag analogue.
func (c *compiler) compileBigUnion(headE ast.Expr, varName string, overE ast.Expr, bag bool) compiledExpr {
	over := c.compile(overE)
	slot := c.bind(varName)
	head := c.compile(headE)
	c.unbind(1)
	wantKind, overMsg, bodyMsg := object.KSet, "eval: big union over %s", "eval: big union body produced %s"
	if bag {
		wantKind, overMsg, bodyMsg = object.KBag, "eval: big bag union over %s", "eval: big bag union body produced %s"
	}
	return func(fr *frame) (object.Value, error) {
		if err := fr.m.step(); err != nil {
			return object.Value{}, err
		}
		s, err := over(fr)
		if err != nil {
			return object.Value{}, err
		}
		if s.IsBottom() {
			return s, nil
		}
		if s.Kind != wantKind {
			return object.Value{}, fmt.Errorf(overMsg, s.Kind)
		}
		fr.m.setOps.Add(1)
		fr.m.iters.Add(int64(len(s.Elems)))
		var all []object.Value
		for _, x := range s.Elems {
			fr.slots[slot] = x
			v, err := head(fr)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			if v.Kind != wantKind {
				return object.Value{}, fmt.Errorf(bodyMsg, v.Kind)
			}
			if err := fr.m.chargeCells(int64(len(v.Elems))); err != nil {
				return object.Value{}, err
			}
			all = append(all, v.Elems...)
		}
		if bag {
			return object.Bag(all...), nil
		}
		return object.Set(all...), nil
	}
}

// compileRankUnion lowers ⋃_r / ⊎_r: the canonical traversal binds the
// 1-based rank alongside each element (section 6 of the paper).
func (c *compiler) compileRankUnion(headE ast.Expr, varName, rankVar string, overE ast.Expr, bag bool) compiledExpr {
	over := c.compile(overE)
	varSlot := c.bind(varName)
	rankSlot := c.bind(rankVar)
	head := c.compile(headE)
	c.unbind(2)
	wantKind, wantName := object.KSet, "ranked union"
	if bag {
		wantKind, wantName = object.KBag, "ranked bag union"
	}
	return func(fr *frame) (object.Value, error) {
		if err := fr.m.step(); err != nil {
			return object.Value{}, err
		}
		s, err := over(fr)
		if err != nil {
			return object.Value{}, err
		}
		if s.IsBottom() {
			return s, nil
		}
		if s.Kind != wantKind {
			return object.Value{}, fmt.Errorf("eval: %s over %s", wantName, s.Kind)
		}
		fr.m.setOps.Add(1)
		fr.m.iters.Add(int64(len(s.Elems)))
		var all []object.Value
		for i, x := range s.Elems {
			fr.slots[varSlot] = x
			fr.slots[rankSlot] = object.Nat(int64(i + 1))
			v, err := head(fr)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			if v.Kind != wantKind {
				return object.Value{}, fmt.Errorf("eval: %s body produced %s", wantName, v.Kind)
			}
			if err := fr.m.chargeCells(int64(len(v.Elems))); err != nil {
				return object.Value{}, err
			}
			all = append(all, v.Elems...)
		}
		if bag {
			return object.Bag(all...), nil
		}
		return object.Set(all...), nil
	}
}

// compileArrayTab lowers [[ head | i1 < b1, ..., ik < bk ]]. The bounds are
// evaluated serially; the element loop runs through the serial kernel or,
// for tabulations of at least machine.threshold cells, the parallel kernel
// in parallel.go. Cells are charged for the whole array before anything is
// allocated — the fail-fast path for huge tabulations under a cell budget.
func (c *compiler) compileArrayTab(n *ast.ArrayTab) compiledExpr {
	bounds := make([]compiledExpr, len(n.Bounds))
	for j, b := range n.Bounds {
		bounds[j] = c.compile(b)
	}
	idxSlots := make([]int, len(n.Idx))
	for j, name := range n.Idx {
		idxSlots[j] = c.bind(name)
	}
	head := c.compile(n.Head)
	c.unbind(len(n.Idx))
	// The tabulation's span id is resolved at compile time so the parallel
	// kernel can attach per-worker ranges and busy times to it.
	spanID := -1
	if id, ok := c.prof.ID(n); ok {
		spanID = id
	}
	return func(fr *frame) (object.Value, error) {
		if err := fr.m.step(); err != nil {
			return object.Value{}, err
		}
		fr.m.tabs.Add(1)
		shape := make([]int, len(bounds))
		size := int64(1)
		for j, b := range bounds {
			v, err := b(fr)
			if err != nil {
				return object.Value{}, err
			}
			if v.IsBottom() {
				return v, nil
			}
			m, err := v.AsNat()
			if err != nil {
				return object.Value{}, fmt.Errorf("eval: tabulation bound %d: %w", j+1, err)
			}
			shape[j] = int(m)
			if m > 0 && size > math.MaxInt64/m {
				size = math.MaxInt64 // saturate; the charge below will trip
			} else {
				size *= m
			}
		}
		if err := fr.m.chargeCells(size); err != nil {
			return object.Value{}, err
		}
		m := fr.m
		if size >= m.threshold && size <= math.MaxInt64/2 && m.workers > 1 && !m.inWorker() {
			return tabulateParallel(fr, shape, int(size), idxSlots, head, spanID)
		}
		return tabulateSerial(fr, shape, idxSlots, head)
	}
}

// tabulateSerial runs the element loop on the calling goroutine, binding
// the index variables by slot store and writing results straight into the
// data slice. The size validation mirrors object.Tabulate's so overflow
// diagnostics are identical to the interpreter's; a ⊥ element poisons the
// whole tabulation but does not stop the scan, exactly as there.
func tabulateSerial(fr *frame, shape []int, idxSlots []int, head compiledExpr) (object.Value, error) {
	size := 1
	for _, n := range shape {
		if n < 0 {
			return object.Value{}, fmt.Errorf("object: negative dimension length %d", n)
		}
		if n > 0 && size > int(^uint(0)>>1)/n {
			return object.Value{}, fmt.Errorf("object: tabulation shape %v overflows", shape)
		}
		size *= n
	}
	data := make([]object.Value, size)
	idx := make([]int, len(shape))
	var bottom object.Value
	sawBottom := false
	slots := fr.slots
	for off := 0; off < size; off++ {
		for j, s := range idxSlots {
			slots[s] = object.Nat(int64(idx[j]))
		}
		v, err := head(fr)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() && !sawBottom {
			bottom, sawBottom = v, true
		}
		data[off] = v
		// Advance the multi-index in row-major order.
		for d := len(shape) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	if sawBottom {
		return bottom, nil
	}
	return object.Value{Kind: object.KArray, Shape: shape, Data: data}, nil
}
