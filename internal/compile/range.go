package compile

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// Range-restricted execution: the prepared-plan half of distributed
// scatter-gather (internal/cluster). A program whose top-level expression is
// a tabulation [[ e | i1 < b1, ..., ik < bk ]] can be executed in two
// separable pieces that together charge exactly the counters of a
// single-node run:
//
//   - PlanShards evaluates the tabulation prologue — the node's own step,
//     the bounds, and the whole-array cell charge — yielding the shape a
//     coordinator partitions into contiguous row-major shards.
//   - ExecuteRange evaluates the element loop over one such shard
//     [start, end), charging only the head evaluations of that range.
//
// The decomposition is exactly-once by construction: elements are pure in
// the index valuation, ranges are disjoint, and a failed or abandoned
// attempt contributes nothing (its counters are discarded; re-executing a
// range recomputes identical values and identical counts). Summing the
// planning counters with each range's counters therefore reproduces a
// serial run's totals no matter how ranges were retried, hedged or moved
// between workers.

// letBinding is one peeled top-level let: the desugared App{Lam, bound}
// shape the optimizer's let-hoisting wraps around a tabulation.
type letBinding struct {
	name  string
	bound ast.Expr
}

// letCode is a compiled let binding: evaluate code, store the value at slot.
type letCode struct {
	slot int
	code compiledExpr
}

// shardCode is the separately-compiled tabulation pieces behind a
// range-partitionable Program: the peeled let bindings, the bound
// expressions, the index slots, and the head closure, sharing one frame
// layout of maxSlots slots.
type shardCode struct {
	lets     []letCode
	bounds   []compiledExpr
	idxSlots []int
	head     compiledExpr
	maxSlots int
}

// newShardCode compiles the tabulation's pieces with a fresh resolve pass
// (unprofiled, exactly as Programs always are; see Program doc). Let
// bindings compile in order, each earlier binding in scope for the later
// ones and for the tabulation itself; the program-wide param table is
// shared so placeholder indices agree with the whole-program code.
func newShardCode(lets []letBinding, tab *ast.ArrayTab, globals map[string]object.Value, limits eval.Limits, pt *paramTable) *shardCode {
	c := &compiler{globals: globals, limits: limits, params: pt}
	sc := &shardCode{}
	for _, l := range lets {
		code := c.compile(l.bound)
		sc.lets = append(sc.lets, letCode{slot: c.bind(l.name), code: code})
	}
	sc.bounds = make([]compiledExpr, len(tab.Bounds))
	for j, b := range tab.Bounds {
		sc.bounds[j] = c.compile(b)
	}
	sc.idxSlots = make([]int, len(tab.Idx))
	for j, name := range tab.Idx {
		sc.idxSlots[j] = c.bind(name)
	}
	sc.head = c.compile(tab.Head)
	c.unbind(len(tab.Idx) + len(lets))
	sc.maxSlots = c.maxSlots
	return sc
}

// Rangeable reports whether the program's top-level expression is a
// tabulation (possibly under top-level let bindings), i.e. whether
// PlanShards/ExecuteRange are available.
func (p *Program) Rangeable() bool { return p.shard != nil }

// evalLets establishes the peeled let bindings in fr, mirroring the
// single-node compiled execution of the App{Lam, bound} chain exactly: the
// App node's step, the Lam's closure-creation step, then the bound
// expression, with a ⊥ binding returned as the chain's value (App
// short-circuits on a ⊥ argument without entering the body).
func (sc *shardCode) evalLets(m *machine, fr *frame) (object.Value, error) {
	for _, l := range sc.lets {
		if err := m.step(); err != nil { // the App node
			return object.Value{}, err
		}
		if err := m.step(); err != nil { // the Lam's closure creation
			return object.Value{}, err
		}
		v, err := l.code(fr)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		fr.slots[l.slot] = v
	}
	return object.Value{}, nil
}

// ShardPlan is the result of evaluating a tabulation's prologue: the shape
// to partition, and the work that evaluation charged.
type ShardPlan struct {
	Shape []int
	// Size is product(Shape): the row-major element space to partition.
	Size int64
	// Bottom is set (IsBottom) when a bound evaluated to ⊥; the query's
	// result is that ⊥ and there is nothing to shard.
	Bottom object.Value
	// Counters is the prologue's work: the tabulation node's step, the
	// bound evaluations, and the whole-array cell charge. Adding every
	// range's counters to it reproduces a single-node run's totals.
	Counters eval.Counters
}

// PlanShards evaluates the tabulation prologue under ctx and opts. It
// mirrors the compiled tabulation closure exactly — step charge, bounds in
// order, ⊥ short-circuit, size saturation, the pre-allocation cell charge,
// and the shape-overflow diagnostic — so a distributed run's merged
// counters and failure behaviour match a local one's.
func (p *Program) PlanShards(ctx context.Context, opts ExecOpts) (*ShardPlan, error) {
	sc := p.shard
	if sc == nil {
		return nil, fmt.Errorf("compile: program is not range-partitionable")
	}
	m := p.newMachine(ctx, opts)
	defer m.clearInterrupt()
	fr := &frame{m: m, slots: make([]object.Value, sc.maxSlots)}
	if bot, err := sc.evalLets(m, fr); err != nil {
		return nil, err
	} else if bot.IsBottom() {
		return &ShardPlan{Bottom: bot, Counters: m.counters()}, nil
	}
	if err := m.step(); err != nil {
		return nil, err
	}
	m.tabs.Add(1)
	shape := make([]int, len(sc.bounds))
	size := int64(1)
	for j, b := range sc.bounds {
		v, err := b(fr)
		if err != nil {
			return nil, err
		}
		if v.IsBottom() {
			return &ShardPlan{Bottom: v, Counters: m.counters()}, nil
		}
		n, err := v.AsNat()
		if err != nil {
			return nil, fmt.Errorf("eval: tabulation bound %d: %w", j+1, err)
		}
		shape[j] = int(n)
		if n > 0 && size > math.MaxInt64/n {
			size = math.MaxInt64 // saturate; the charge below will trip
		} else {
			size *= n
		}
	}
	if err := m.chargeCells(size); err != nil {
		return nil, err
	}
	// Mirror tabulateSerial's int-width overflow diagnostic for shapes that
	// survive an unlimited cell budget.
	isize := 1
	for _, n := range shape {
		if n > 0 && isize > int(^uint(0)>>1)/n {
			return nil, fmt.Errorf("object: tabulation shape %v overflows", shape)
		}
		isize *= n
	}
	return &ShardPlan{Shape: shape, Size: size, Counters: m.counters()}, nil
}

// RangeResult is one contiguous row-major slice of a tabulation's elements.
type RangeResult struct {
	// Values holds the end-start elements of the range, in row-major order.
	Values []object.Value
	// BottomOff is the absolute offset of the first ⊥ element within the
	// range (-1 when none); Bottom is that element. A ⊥ poisons the whole
	// tabulation, but the scan still completes the range — exactly as the
	// serial kernel does — so counters stay execution-order independent.
	BottomOff int64
	Bottom    object.Value
	// Counters is the work the range's head evaluations charged.
	Counters eval.Counters
}

// RangeError wraps a deterministic evaluation error with the row-major
// offset at which it occurred, so a scatter-gather merge can select the
// error a serial scan would have hit first (the lowest offset: bottoms
// never stop the scan, so the serial scan always reaches the lowest-offset
// erroring element).
type RangeError struct {
	Off int64
	Err error
}

func (e *RangeError) Error() string { return e.Err.Error() }
func (e *RangeError) Unwrap() error { return e.Err }

// ExecuteRange evaluates the tabulation head over offsets [start, end) of
// the given shape, charging exactly the counters a serial scan of those
// offsets charges. The shape is a parameter — not re-derived from the
// bounds — so a worker executing a shard does not repeat (or re-count) the
// coordinator's prologue. Ranges of at least the parallel threshold fan out
// across local workers with forked counter machines, preserving exact
// totals and first-⊥/lowest-offset-error determinism exactly as the
// whole-array kernel does.
//
// When the program's shardable core sits under let bindings, each range
// execution re-establishes them (elements are pure, so the values are
// identical to the coordinator's) but reports head-only counters: the let
// work was already counted once, in PlanShards, so merged totals still
// reproduce a single-node run's exactly. The re-evaluation does consume
// this execution's budgets — budgets apply per shard by design.
func (p *Program) ExecuteRange(ctx context.Context, opts ExecOpts, shape []int, start, end int64) (*RangeResult, error) {
	sc := p.shard
	if sc == nil {
		return nil, fmt.Errorf("compile: program is not range-partitionable")
	}
	size := int64(1)
	for _, n := range shape {
		if n < 0 {
			return nil, fmt.Errorf("compile: negative dimension in shape %v", shape)
		}
		if n > 0 && size > math.MaxInt64/int64(n) {
			return nil, fmt.Errorf("compile: shape %v overflows", shape)
		}
		size *= int64(n)
	}
	if start < 0 || end < start || end > size {
		return nil, fmt.Errorf("compile: range [%d, %d) outside element space of size %d", start, end, size)
	}
	m := p.newMachine(ctx, opts)
	defer m.clearInterrupt()
	proto := make([]object.Value, sc.maxSlots)
	var base eval.Counters
	if len(sc.lets) > 0 {
		lfr := &frame{m: m, slots: proto}
		bot, err := sc.evalLets(m, lfr)
		if err != nil {
			return nil, err
		}
		if bot.IsBottom() {
			// Unreachable under a correct coordinator — PlanShards reports a
			// ⊥ binding before any shard is dispatched — but report the
			// poison coherently rather than scanning a meaningless range.
			data := make([]object.Value, end-start)
			for i := range data {
				data[i] = bot
			}
			return &RangeResult{Values: data, Bottom: bot, BottomOff: start}, nil
		}
		base = m.counters()
	}
	n := end - start
	var res *RangeResult
	var err error
	if n >= m.threshold && n <= math.MaxInt64/2 && m.workers > 1 {
		res, err = rangeParallel(m, sc, shape, start, end, proto)
	} else {
		res, err = rangeSerial(m, sc, shape, start, end, proto)
	}
	if err != nil {
		return nil, err
	}
	res.Counters = subCounters(res.Counters, base)
	return res, nil
}

// subCounters subtracts b fieldwise from a; used to report head-only work
// for ranges whose let prologue was already counted by PlanShards.
func subCounters(a, b eval.Counters) eval.Counters {
	return eval.Counters{
		Steps:  a.Steps - b.Steps,
		Cells:  a.Cells - b.Cells,
		Tabs:   a.Tabs - b.Tabs,
		SetOps: a.SetOps - b.SetOps,
		Iters:  a.Iters - b.Iters,
	}
}

// rangeSerial scans [start, end) on the calling goroutine. proto is the
// slot template carrying the let-binding values; it is cloned because head
// evaluation rebinds loop slots in place.
func rangeSerial(m *machine, sc *shardCode, shape []int, start, end int64, proto []object.Value) (*RangeResult, error) {
	slots := make([]object.Value, len(proto))
	copy(slots, proto)
	fr := &frame{m: m, slots: slots}
	data := make([]object.Value, end-start)
	res := &RangeResult{Values: data, BottomOff: -1}
	idx := unflatten(int(start), shape)
	for off := start; off < end; off++ {
		for j, s := range sc.idxSlots {
			fr.slots[s] = object.Nat(int64(idx[j]))
		}
		v, err := sc.head(fr)
		if err != nil {
			res.Counters = m.counters()
			return nil, &RangeError{Off: off, Err: err}
		}
		if v.IsBottom() && res.BottomOff < 0 {
			res.Bottom, res.BottomOff = v, off
		}
		data[off-start] = v
		advance(idx, shape)
	}
	res.Counters = m.counters()
	return res, nil
}

// rangeParallel fans [start, end) across local workers, mirroring
// tabulateParallel: contiguous sub-ranges, forked machines flushed at join
// (so counters equal a serial scan's), lowest-offset error and first-⊥
// determinism, and early exit only for resource errors.
func rangeParallel(m *machine, sc *shardCode, shape []int, start, end int64, proto []object.Value) (*RangeResult, error) {
	size := int(end - start)
	nw := m.workers
	if max := (size + minChunk - 1) / minChunk; nw > max {
		nw = max
	}
	chunk := (size + nw - 1) / nw

	type workerResult struct {
		err       error
		errOff    int64
		bottom    object.Value
		bottomOff int64
	}
	results := make([]workerResult, nw)
	data := make([]object.Value, size)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := start + int64(w*chunk)
		hi := lo + int64(chunk)
		if hi > end {
			hi = end
		}
		res := &results[w]
		res.errOff, res.bottomOff = -1, -1
		if lo >= hi {
			continue
		}
		wm := m.fork()
		wg.Add(1)
		go func(lo, hi int64, res *workerResult, wm *machine) {
			defer wg.Done()
			slots := make([]object.Value, len(proto))
			copy(slots, proto)
			wfr := &frame{m: wm, slots: slots}
			defer wm.flush()
			idx := unflatten(int(lo), shape)
			for off := lo; off < hi; off++ {
				if failed.Load() {
					return
				}
				for j, s := range sc.idxSlots {
					wfr.slots[s] = object.Nat(int64(idx[j]))
				}
				v, err := sc.head(wfr)
				if err != nil {
					res.err, res.errOff = err, off
					if isResourceErr(err) {
						failed.Store(true)
					}
					return
				}
				if v.IsBottom() && res.bottomOff < 0 {
					res.bottom, res.bottomOff = v, off
				}
				data[off-start] = v
				advance(idx, shape)
			}
		}(lo, hi, res, wm)
	}
	wg.Wait()

	// Workers cover disjoint ascending sub-ranges, so the first hit wins.
	for i := range results {
		if results[i].err != nil {
			return nil, &RangeError{Off: results[i].errOff, Err: results[i].err}
		}
	}
	out := &RangeResult{Values: data, BottomOff: -1, Counters: m.counters()}
	for i := range results {
		if results[i].bottomOff >= 0 {
			out.Bottom, out.BottomOff = results[i].bottom, results[i].bottomOff
			break
		}
	}
	return out, nil
}
