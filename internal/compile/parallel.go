package compile

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// minChunk is the smallest per-worker range worth a goroutine; tabulations
// spawn at most ceil(size/minChunk) workers even when GOMAXPROCS is larger.
const minChunk = 2048

// tabulateParallel fans the element loop of a tabulation across workers.
// Soundness: a tabulation head is a pure function of the index valuation
// (and the enclosing frame, which workers copy), so elements can be
// computed in any order into disjoint regions of the shared data slice.
//
// Determinism is preserved exactly:
//
//   - Each worker owns a contiguous row-major range, so "first ⊥ in
//     row-major order" — the interpreter's result for a tabulation with an
//     erroneous element — is the lowest-offset bottom across workers.
//   - A non-resource error (unbound variable, kind mismatch) does not stop
//     the other workers: every worker finishes its range or fails at its
//     own lowest offset, and the lowest-offset error wins, matching the
//     interpreter's scan order. Resource errors (budget, cancellation) DO
//     stop everyone early via the failed flag; their payload is
//     timing-dependent anyway, and aborting fast is the point.
//
// Counters are exact: each worker counts on a forked machine and flushes
// into the parent at join, so the post-join totals equal a serial run's.
// Under profiling, each fork carries its own span context merged back the
// same way, and spanID (the tabulation's span, -1 when unprofiled) receives
// one WorkerSpan per worker recording its range, busy time and steps.
func tabulateParallel(fr *frame, shape []int, size int, idxSlots []int, head compiledExpr, spanID int) (object.Value, error) {
	m := fr.m
	nw := m.workers
	if max := (size + minChunk - 1) / minChunk; nw > max {
		nw = max
	}
	chunk := (size + nw - 1) / nw

	type workerResult struct {
		err       error
		errOff    int
		bottom    object.Value
		bottomOff int
		busy      time.Duration
	}
	results := make([]workerResult, nw)
	machines := make([]*machine, nw)
	data := make([]object.Value, size)
	profiled := m.prof != nil
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		start := w * chunk
		end := start + chunk
		if end > size {
			end = size
		}
		res := &results[w]
		res.errOff, res.bottomOff = -1, -1
		if start >= end {
			continue
		}
		wm := m.fork()
		machines[w] = wm
		wg.Add(1)
		go func(start, end int, res *workerResult, wm *machine) {
			defer wg.Done()
			slots := make([]object.Value, len(fr.slots))
			copy(slots, fr.slots)
			wfr := &frame{m: wm, slots: slots}
			defer wm.flush()
			if profiled {
				t0 := time.Now()
				defer func() { res.busy = time.Since(t0) }()
			}
			idx := unflatten(start, shape)
			for off := start; off < end; off++ {
				if failed.Load() {
					return
				}
				for j, s := range idxSlots {
					wfr.slots[s] = object.Nat(int64(idx[j]))
				}
				v, err := head(wfr)
				if err != nil {
					res.err, res.errOff = err, off
					if isResourceErr(err) {
						failed.Store(true)
					}
					return
				}
				if v.IsBottom() && res.bottomOff < 0 {
					res.bottom, res.bottomOff = v, off
				}
				data[off] = v
				advance(idx, shape)
			}
		}(start, end, res, wm)
	}
	wg.Wait()

	if profiled && spanID >= 0 {
		spans := make([]eval.WorkerSpan, 0, nw)
		for w := 0; w < nw; w++ {
			wm := machines[w]
			if wm == nil {
				continue
			}
			start := w * chunk
			end := start + chunk
			if end > size {
				end = size
			}
			spans = append(spans, eval.WorkerSpan{
				Worker: w,
				Start:  start,
				End:    end,
				Busy:   results[w].busy,
				Steps:  wm.steps.Load(),
			})
		}
		m.prof.RecordWorkers(spanID, spans)
	}

	// Workers cover disjoint ascending ranges, so the first hit wins.
	for i := range results {
		if results[i].err != nil {
			return object.Value{}, results[i].err
		}
	}
	for i := range results {
		if results[i].bottomOff >= 0 {
			return results[i].bottom, nil
		}
	}
	return object.Value{Kind: object.KArray, Shape: shape, Data: data}, nil
}

// isResourceErr reports whether err is a *eval.ResourceError — the class of
// failures where aborting sibling workers early is preferable to finishing
// the scan for a deterministic lowest-offset error.
func isResourceErr(err error) bool {
	_, ok := err.(*eval.ResourceError)
	return ok
}

// unflatten converts a row-major offset into a multi-index for shape.
func unflatten(off int, shape []int) []int {
	idx := make([]int, len(shape))
	for d := len(shape) - 1; d >= 0; d-- {
		if shape[d] > 0 {
			idx[d] = off % shape[d]
			off /= shape[d]
		}
	}
	return idx
}

// advance steps idx to the next row-major position within shape.
func advance(idx, shape []int) {
	for d := len(shape) - 1; d >= 0; d-- {
		idx[d]++
		if idx[d] < shape[d] {
			return
		}
		idx[d] = 0
	}
}
