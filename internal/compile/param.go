package compile

import "github.com/aqldb/aql/internal/object"

// paramTable assigns each $name placeholder of a program a stable index
// into the per-execution argument frame (machine.args). The table is built
// during the resolve pass and shared — by pointer — between the top-level
// compiler, every lambda-body sub-compiler, and the shard-view compiler, so
// one name means one index everywhere in the program.
//
// The table is immutable after compilation: executions only read it, which
// is what makes one prepared Program safe to Execute concurrently with
// different argument frames.
type paramTable struct {
	names []string
	index map[string]int
}

// slot returns the frame index of name, assigning the next one on first use.
func (t *paramTable) slot(name string) int {
	if i, ok := t.index[name]; ok {
		return i
	}
	if t.index == nil {
		t.index = map[string]int{}
	}
	i := len(t.names)
	t.names = append(t.names, name)
	t.index[name] = i
	return i
}

// resolve builds the argument frame for one execution: values land at their
// table index, with explicit presence flags (the zero object.Value is not a
// usable sentinel). Names the program never mentions are ignored here —
// strict unknown-argument rejection is the caller's job (the server and the
// Go API both validate against ParamNames before executing).
func (t *paramTable) resolve(args map[string]object.Value) (vals []object.Value, ok []bool) {
	if t == nil || len(t.names) == 0 || len(args) == 0 {
		return nil, nil
	}
	vals = make([]object.Value, len(t.names))
	ok = make([]bool, len(t.names))
	for name, v := range args {
		if i, found := t.index[name]; found {
			vals[i] = v
			ok[i] = true
		}
	}
	return vals, ok
}
