package compile

import (
	"context"
	"errors"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// rangeTab builds [[ (i*j + i + 7) % 93 | i < r, j < c ]]: a 2-D
// tabulation, so range execution must reconstruct multi-indices from flat
// row-major offsets at arbitrary shard boundaries.
func rangeTab(r, c int64) *ast.ArrayTab {
	return &ast.ArrayTab{
		Head: &ast.Arith{
			Op: ast.OpMod,
			L: &ast.Arith{Op: ast.OpAdd,
				L: &ast.Arith{Op: ast.OpMul, L: v("i"), R: v("j")},
				R: &ast.Arith{Op: ast.OpAdd, L: v("i"), R: nat(7)}},
			R: nat(93),
		},
		Idx:    []string{"i", "j"},
		Bounds: []ast.Expr{nat(r), nat(c)},
	}
}

// splitRange cuts [0, size) into n contiguous pieces (the first size%n get
// the extra element), mirroring how a coordinator shards an element space.
func splitRange(size int64, n int) [][2]int64 {
	var out [][2]int64
	base, rem := size/int64(n), size%int64(n)
	off := int64(0)
	for i := 0; i < n; i++ {
		l := base
		if int64(i) < rem {
			l++
		}
		if l == 0 {
			continue
		}
		out = append(out, [2]int64{off, off + l})
		off += l
	}
	return out
}

// TestRangeDifferential: PlanShards + ExecuteRange over any contiguous
// partition reassembles to byte-identical values and exactly the counters
// of a whole-program Execute — the contract distributed scatter-gather
// (internal/cluster) is built on. Exercised over several shard counts,
// including degenerate 1-shard and per-row shards, and over both the serial
// and parallel range kernels.
func TestRangeDifferential(t *testing.T) {
	const r, c = 37, 53
	ctx := context.Background()
	p := NewProgram(rangeTab(r, c), nil, eval.Limits{})
	if !p.Rangeable() {
		t.Fatal("tabulation program not Rangeable")
	}

	wantVal, wantCounters, err := p.Execute(ctx, ExecOpts{})
	if err != nil {
		t.Fatalf("reference Execute: %v", err)
	}
	if wantVal.Kind != object.KArray {
		t.Fatalf("reference value kind = %v, want array", wantVal.Kind)
	}

	for _, tc := range []struct {
		name     string
		shards   int
		execOpts ExecOpts
	}{
		{"one-shard", 1, ExecOpts{Threshold: -1}},
		{"three-shards", 3, ExecOpts{Threshold: -1}},
		{"seven-shards", 7, ExecOpts{Threshold: -1}},
		{"per-row-shards", r, ExecOpts{Threshold: -1}},
		{"parallel-kernel", 3, ExecOpts{Threshold: 1, Workers: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := p.PlanShards(ctx, ExecOpts{})
			if err != nil {
				t.Fatalf("PlanShards: %v", err)
			}
			if plan.Size != r*c {
				t.Fatalf("plan size = %d, want %d", plan.Size, r*c)
			}
			merged := plan.Counters
			data := make([]object.Value, plan.Size)
			for _, rg := range splitRange(plan.Size, tc.shards) {
				res, err := p.ExecuteRange(ctx, tc.execOpts, plan.Shape, rg[0], rg[1])
				if err != nil {
					t.Fatalf("ExecuteRange [%d,%d): %v", rg[0], rg[1], err)
				}
				if res.BottomOff >= 0 {
					t.Fatalf("unexpected ⊥ at offset %d", res.BottomOff)
				}
				copy(data[rg[0]:rg[1]], res.Values)
				merged.Steps += res.Counters.Steps
				merged.Cells += res.Counters.Cells
				merged.Tabs += res.Counters.Tabs
				merged.SetOps += res.Counters.SetOps
				merged.Iters += res.Counters.Iters
			}
			got := object.Value{Kind: object.KArray, Shape: plan.Shape, Data: data}
			if !object.Equal(got, wantVal) {
				t.Errorf("reassembled value differs from Execute's")
			}
			if merged != wantCounters {
				t.Errorf("merged counters = %+v, want %+v", merged, wantCounters)
			}
		})
	}
}

// TestRangeFirstBottom: per-offset ⊥ payloads (out-of-bounds subscripts)
// surface in each shard as (BottomOff, Bottom); the minimum offset across
// shards must be the ⊥ a serial whole-program run returns, with an
// identical diagnostic.
func TestRangeFirstBottom(t *testing.T) {
	const valid, total = 40, 100
	data := make([]object.Value, valid)
	for i := range data {
		data[i] = object.Nat(int64(i))
	}
	globals := map[string]object.Value{"A": object.Vector(data...)}
	tab := &ast.ArrayTab{
		Head:   &ast.Subscript{Arr: v("A"), Index: v("i")},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(total)},
	}
	ctx := context.Background()
	p := NewProgram(tab, globals, eval.Limits{})

	want, wantCounters, err := p.Execute(ctx, ExecOpts{})
	if err != nil {
		t.Fatalf("reference Execute: %v", err)
	}
	if !want.IsBottom() {
		t.Fatalf("reference result = %v, want ⊥", want.Kind)
	}

	plan, err := p.PlanShards(ctx, ExecOpts{})
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	merged := plan.Counters
	bestOff := int64(-1)
	var best object.Value
	// Scan shards out of order to prove merge order doesn't matter.
	ranges := splitRange(plan.Size, 4)
	for i := len(ranges) - 1; i >= 0; i-- {
		rg := ranges[i]
		res, err := p.ExecuteRange(ctx, ExecOpts{}, plan.Shape, rg[0], rg[1])
		if err != nil {
			t.Fatalf("ExecuteRange [%d,%d): %v", rg[0], rg[1], err)
		}
		if res.BottomOff >= 0 && (bestOff < 0 || res.BottomOff < bestOff) {
			bestOff, best = res.BottomOff, res.Bottom
		}
		merged.Steps += res.Counters.Steps
		merged.Cells += res.Counters.Cells
		merged.Tabs += res.Counters.Tabs
		merged.SetOps += res.Counters.SetOps
		merged.Iters += res.Counters.Iters
	}
	if bestOff != valid {
		t.Fatalf("first ⊥ offset = %d, want %d", bestOff, valid)
	}
	if best.String() != want.String() {
		t.Errorf("merged ⊥ = %s, want %s", best, want)
	}
	if merged != wantCounters {
		t.Errorf("merged counters = %+v, want %+v", merged, wantCounters)
	}
}

// TestRangeErrorOffset: a deterministic head error (arithmetic on a
// non-numeric element) is reported as a RangeError carrying the row-major
// offset it occurred at, so a merge can pick the lowest offset — the error
// a serial scan hits first.
func TestRangeErrorOffset(t *testing.T) {
	const good, total = 25, 60
	data := make([]object.Value, total)
	for i := range data {
		if i < good {
			data[i] = object.Nat(int64(i))
		} else {
			data[i] = object.Bool(true)
		}
	}
	globals := map[string]object.Value{"A": object.Vector(data...)}
	tab := &ast.ArrayTab{
		Head: &ast.Arith{Op: ast.OpAdd,
			L: &ast.Subscript{Arr: v("A"), Index: v("i")}, R: nat(0)},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(total)},
	}
	ctx := context.Background()
	p := NewProgram(tab, globals, eval.Limits{})

	_, _, wantErr := p.Execute(ctx, ExecOpts{})
	if wantErr == nil {
		t.Fatal("reference Execute succeeded, want error")
	}

	plan, err := p.PlanShards(ctx, ExecOpts{})
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	// A shard that contains the erroring offset fails with that offset...
	_, err = p.ExecuteRange(ctx, ExecOpts{}, plan.Shape, 0, plan.Size)
	var re *RangeError
	if !errors.As(err, &re) {
		t.Fatalf("ExecuteRange err = %v, want *RangeError", err)
	}
	if re.Off != good {
		t.Errorf("error offset = %d, want %d", re.Off, good)
	}
	if re.Error() != wantErr.Error() {
		t.Errorf("error = %q, want %q", re.Error(), wantErr.Error())
	}
	// ...and one that excludes it succeeds.
	if _, err := p.ExecuteRange(ctx, ExecOpts{}, plan.Shape, 0, good); err != nil {
		t.Errorf("ExecuteRange over clean prefix: %v", err)
	}
}

// TestPlanShardsBottomBound: a bound that evaluates to ⊥ makes the whole
// tabulation that ⊥; PlanShards reports it (with counters) instead of a
// shape, and a whole-program Execute agrees.
func TestPlanShardsBottomBound(t *testing.T) {
	tab := &ast.ArrayTab{
		Head:   v("i"),
		Idx:    []string{"i"},
		Bounds: []ast.Expr{&ast.Arith{Op: ast.OpDiv, L: nat(1), R: nat(0)}},
	}
	ctx := context.Background()
	p := NewProgram(tab, nil, eval.Limits{})

	want, wantCounters, err := p.Execute(ctx, ExecOpts{})
	if err != nil {
		t.Fatalf("reference Execute: %v", err)
	}
	if !want.IsBottom() {
		t.Fatalf("reference result kind = %v, want ⊥", want.Kind)
	}
	plan, err := p.PlanShards(ctx, ExecOpts{})
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if !plan.Bottom.IsBottom() {
		t.Fatal("plan.Bottom not set for ⊥ bound")
	}
	if plan.Bottom.String() != want.String() {
		t.Errorf("plan ⊥ = %s, want %s", plan.Bottom, want)
	}
	if plan.Counters != wantCounters {
		t.Errorf("plan counters = %+v, want %+v", plan.Counters, wantCounters)
	}
}

// TestExecuteRangeValidation: malformed ranges and non-rangeable programs
// are rejected up front.
func TestExecuteRangeValidation(t *testing.T) {
	ctx := context.Background()
	p := NewProgram(rangeTab(4, 4), nil, eval.Limits{})
	if _, err := p.ExecuteRange(ctx, ExecOpts{}, []int{4, 4}, 8, 20); err == nil {
		t.Error("range past element space accepted")
	}
	if _, err := p.ExecuteRange(ctx, ExecOpts{}, []int{4, 4}, -1, 2); err == nil {
		t.Error("negative start accepted")
	}
	q := NewProgram(nat(1), nil, eval.Limits{})
	if q.Rangeable() {
		t.Error("literal program claims Rangeable")
	}
	if _, err := q.PlanShards(ctx, ExecOpts{}); err == nil {
		t.Error("PlanShards on non-rangeable program succeeded")
	}
	if _, err := q.ExecuteRange(ctx, ExecOpts{}, []int{1}, 0, 1); err == nil {
		t.Error("ExecuteRange on non-rangeable program succeeded")
	}
}
