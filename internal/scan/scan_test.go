package scan

import "testing"

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Scan(src)
	if err != nil {
		t.Fatalf("Scan(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func eqKinds(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSymbols(t *testing.T) {
	tests := []struct {
		src  string
		want []Kind
	}{
		{"( ) { } , ; | : ! = < >", []Kind{LPAREN, RPAREN, LBRACE, RBRACE, COMMA, SEMI, BAR, COLON, BANG, EQ, LT, GT, EOF}},
		{"{| |} [[ ]] [ ]", []Kind{LBAG, RBAG, LARR, RARR, LBRACK, RBRACK, EOF}},
		{"<- => == <> <= >=", []Kind{ARROW, DARROW, BIND, NE, LE, GE, EOF}},
		{"+ - * / %", []Kind{PLUS, MINUS, STAR, SLASH, PERCENT, EOF}},
		{`\x _ _|_`, []Kind{BACKSLASH, IDENT, WILD, BOTTOM, EOF}},
		{"_x", []Kind{IDENT, EOF}},
	}
	for _, tt := range tests {
		if got := kinds(t, tt.src); !eqKinds(got, tt.want) {
			t.Errorf("Scan(%q) kinds = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks, err := Scan("fn WS' => heatindex")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KEYWORD || toks[0].Text != "fn" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != IDENT || toks[1].Text != "WS'" {
		t.Errorf("tok1 = %+v (primes should be part of identifiers)", toks[1])
	}
	if toks[3].Kind != IDENT || toks[3].Text != "heatindex" {
		t.Errorf("tok3 = %+v", toks[3])
	}
	for _, kw := range []string{"let", "val", "in", "end", "if", "then", "else",
		"true", "false", "and", "or", "not", "mem", "macro", "readval",
		"writeval", "using", "at"} {
		toks, err := Scan(kw)
		if err != nil {
			t.Fatal(err)
		}
		if toks[0].Kind != KEYWORD {
			t.Errorf("%q should be a keyword", kw)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Scan("30 85.0 1e-3 2.5E2 7")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != NAT || toks[0].Nat != 30 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != REAL || toks[1].Real != 85.0 {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != REAL || toks[2].Real != 1e-3 {
		t.Errorf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != REAL || toks[3].Real != 250 {
		t.Errorf("tok3 = %+v", toks[3])
	}
	if toks[4].Kind != NAT || toks[4].Nat != 7 {
		t.Errorf("tok4 = %+v", toks[4])
	}
}

func TestSubscriptNotReal(t *testing.T) {
	// `months[i]` and `A[1]` must not lex `1.` type reals; also `d*24+23`.
	want := []Kind{IDENT, LBRACK, NAT, RBRACK, EOF}
	if got := kinds(t, "A[1]"); !eqKinds(got, want) {
		t.Errorf("got %v", got)
	}
}

func TestStrings(t *testing.T) {
	toks, err := Scan(`"temp.nc" "a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "temp.nc" {
		t.Errorf("tok0 = %q", toks[0].Text)
	}
	if toks[1].Text != `a"b` {
		t.Errorf("tok1 = %q", toks[1].Text)
	}
	if _, err := Scan(`"unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestComments(t *testing.T) {
	toks, err := Scan("1 (* a comment (* nested *) more *) 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Nat != 1 || toks[1].Nat != 2 {
		t.Errorf("toks = %+v", toks)
	}
	if _, err := Scan("(* unterminated"); err == nil {
		t.Error("unterminated comment should error")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Scan("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestPaperQueryLexes(t *testing.T) {
	src := `{d | \d <- gen!30,
	        \WS' == evenpos!(proj_col!(WS,0)),
	        \TRW == zip_3!(T,RH,WS'),
	        \A == subseq!(TRW, d*24, d*24+23),
	        heatindex!(A) > threshold};`
	toks, err := Scan(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].Kind != EOF || toks[len(toks)-2].Kind != SEMI {
		t.Error("query should end with ; EOF")
	}
}

func TestSessionQueryLexes(t *testing.T) {
	src := `{d | [(\h,_,_):\t] <- T, \d==h/24+1,
	        h > june_sunset!(NYlat,NYlon,d), t > 85.0};`
	if _, err := Scan(src); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{"#", "@", "99999999999999999999999"} {
		if _, err := Scan(src); err == nil {
			t.Errorf("Scan(%q) should error", src)
		}
	}
}
