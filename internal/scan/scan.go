// Package scan tokenizes AQL surface syntax (section 3 of the paper).
//
// The concrete syntax follows the paper's examples (sections 1 and 4.2):
// `!` is function application, `\x` marks a binding occurrence in a pattern,
// `<-` introduces a generator, `==` is the binding shorthand for
// `<- { e }`, `fn P => e` is lambda abstraction, `(* ... *)` are (nesting)
// comments, and `[[` `]]` delimit array literals.
package scan

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Kind is a token kind.
type Kind int

// Token kinds.
const (
	EOF       Kind = iota
	IDENT          // identifier, possibly with trailing primes: WS'
	NAT            // natural literal: 42
	REAL           // real literal: 85.0, 1e-3
	STRING         // string literal: "temp.nc"
	KEYWORD        // fn let val in end if then else true false and or not mem macro readval writeval using at
	LPAREN         // (
	RPAREN         // )
	LBRACE         // {
	RBRACE         // }
	LBAG           // {|
	RBAG           // |}
	LARR           // [[
	RARR           // ]]
	LBRACK         // [
	RBRACK         // ]
	COMMA          // ,
	SEMI           // ;
	BAR            // |
	COLON          // :
	BACKSLASH      // \
	WILD           // _
	BANG           // !
	ARROW          // <- (generator)
	DARROW         // => (lambda)
	BIND           // == (binding shorthand)
	EQ             // =
	NE             // <>
	LE             // <=
	GE             // >=
	LT             // <
	GT             // >
	PLUS           // +
	MINUS          // -
	STAR           // *
	SLASH          // /
	PERCENT        // %
	BOTTOM         // _|_
	PARAM          // $name (input placeholder)
)

var kindNames = map[Kind]string{
	EOF: "end of input", IDENT: "identifier", NAT: "natural literal",
	REAL: "real literal", STRING: "string literal", KEYWORD: "keyword",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBAG: "{|", RBAG: "|}",
	LARR: "[[", RARR: "]]", LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";",
	BAR: "|", COLON: ":", BACKSLASH: "\\", WILD: "_", BANG: "!", ARROW: "<-",
	DARROW: "=>", BIND: "==", EQ: "=", NE: "<>", LE: "<=", GE: ">=", LT: "<",
	GT: ">", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	BOTTOM: "_|_", PARAM: "input placeholder",
}

// String returns a readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Text string  // IDENT, KEYWORD: the name; STRING: the unquoted value
	Nat  int64   // NAT
	Real float64 // REAL
	Pos  Pos
}

// Pos is a line/column source position (both 1-based).
type Pos struct{ Line, Col int }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// keywords of the surface language.
var keywords = map[string]bool{
	"fn": true, "let": true, "val": true, "in": true, "end": true,
	"if": true, "then": true, "else": true, "true": true, "false": true,
	"and": true, "or": true, "not": true, "mem": true,
	"union": true, "uplus": true,
	"macro": true, "readval": true, "writeval": true, "using": true, "at": true,
}

// IsKeyword reports whether name is a reserved word.
func IsKeyword(name string) bool { return keywords[name] }

// Scan tokenizes src, returning the token stream terminated by an EOF token.
func Scan(src string) ([]Token, error) {
	s := &scanner{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := s.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type scanner struct {
	src  string
	pos  int
	line int
	col  int
}

func (s *scanner) errf(format string, args ...any) error {
	return fmt.Errorf("scan: %d:%d: %s", s.line, s.col, fmt.Sprintf(format, args...))
}

func (s *scanner) peek() byte {
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

func (s *scanner) peek2() byte {
	if s.pos+1 >= len(s.src) {
		return 0
	}
	return s.src[s.pos+1]
}

func (s *scanner) advance() byte {
	b := s.src[s.pos]
	s.pos++
	if b == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return b
}

func (s *scanner) skipSpaceAndComments() error {
	for s.pos < len(s.src) {
		b := s.peek()
		switch {
		case unicode.IsSpace(rune(b)):
			s.advance()
		case b == '(' && s.peek2() == '*':
			start := Pos{s.line, s.col}
			s.advance()
			s.advance()
			depth := 1
			for depth > 0 {
				if s.pos >= len(s.src) {
					return fmt.Errorf("scan: %s: unterminated comment", start)
				}
				if s.peek() == '(' && s.peek2() == '*' {
					depth++
					s.advance()
					s.advance()
				} else if s.peek() == '*' && s.peek2() == ')' {
					depth--
					s.advance()
					s.advance()
				} else {
					s.advance()
				}
			}
		default:
			return nil
		}
	}
	return nil
}

func (s *scanner) next() (Token, error) {
	if err := s.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{s.line, s.col}
	if s.pos >= len(s.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	b := s.peek()
	switch {
	case b == '_':
		// `_|_` is bottom; a bare `_` is the wildcard; `_x` is an identifier.
		if s.peek2() == '|' && s.pos+2 < len(s.src) && s.src[s.pos+2] == '_' {
			s.advance()
			s.advance()
			s.advance()
			return Token{Kind: BOTTOM, Pos: pos}, nil
		}
		if isIdentByte(s.peek2()) {
			return s.ident(pos)
		}
		s.advance()
		return Token{Kind: WILD, Pos: pos}, nil
	case unicode.IsLetter(rune(b)):
		return s.ident(pos)
	case unicode.IsDigit(rune(b)):
		return s.number(pos)
	case b == '"':
		return s.str(pos)
	case b == '$':
		// `$name` is an input placeholder: a hole filled per execution from
		// the argument frame of a prepared query.
		s.advance()
		if !isIdentByte(s.peek()) || unicode.IsDigit(rune(s.peek())) {
			return Token{}, s.errf("expected a name after $")
		}
		start := s.pos
		for s.pos < len(s.src) && isIdentByte(s.peek()) {
			s.advance()
		}
		return Token{Kind: PARAM, Text: s.src[start:s.pos], Pos: pos}, nil
	}
	// Multi-byte symbols first.
	two := ""
	if s.pos+1 < len(s.src) {
		two = s.src[s.pos : s.pos+2]
	}
	switch two {
	case "{|":
		s.advance()
		s.advance()
		return Token{Kind: LBAG, Pos: pos}, nil
	case "|}":
		s.advance()
		s.advance()
		return Token{Kind: RBAG, Pos: pos}, nil
	case "[[":
		s.advance()
		s.advance()
		return Token{Kind: LARR, Pos: pos}, nil
	case "]]":
		s.advance()
		s.advance()
		return Token{Kind: RARR, Pos: pos}, nil
	case "<-":
		s.advance()
		s.advance()
		return Token{Kind: ARROW, Pos: pos}, nil
	case "=>":
		s.advance()
		s.advance()
		return Token{Kind: DARROW, Pos: pos}, nil
	case "==":
		s.advance()
		s.advance()
		return Token{Kind: BIND, Pos: pos}, nil
	case "<>":
		s.advance()
		s.advance()
		return Token{Kind: NE, Pos: pos}, nil
	case "<=":
		s.advance()
		s.advance()
		return Token{Kind: LE, Pos: pos}, nil
	case ">=":
		s.advance()
		s.advance()
		return Token{Kind: GE, Pos: pos}, nil
	}
	s.advance()
	single := map[byte]Kind{
		'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE, '[': LBRACK,
		']': RBRACK, ',': COMMA, ';': SEMI, '|': BAR, ':': COLON,
		'\\': BACKSLASH, '!': BANG, '=': EQ, '<': LT, '>': GT, '+': PLUS,
		'-': MINUS, '*': STAR, '/': SLASH, '%': PERCENT,
	}
	if k, ok := single[b]; ok {
		return Token{Kind: k, Pos: pos}, nil
	}
	return Token{}, s.errf("unexpected character %q", b)
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '\'' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

func (s *scanner) ident(pos Pos) (Token, error) {
	start := s.pos
	for s.pos < len(s.src) && isIdentByte(s.peek()) {
		s.advance()
	}
	name := s.src[start:s.pos]
	if keywords[name] {
		return Token{Kind: KEYWORD, Text: name, Pos: pos}, nil
	}
	return Token{Kind: IDENT, Text: name, Pos: pos}, nil
}

func (s *scanner) number(pos Pos) (Token, error) {
	start := s.pos
	for s.pos < len(s.src) && unicode.IsDigit(rune(s.peek())) {
		s.advance()
	}
	isReal := false
	// A fractional part: '.' followed by a digit (so `1.` is an error and
	// `A[1]` is unaffected).
	if s.peek() == '.' && unicode.IsDigit(rune(s.peek2())) {
		isReal = true
		s.advance()
		for s.pos < len(s.src) && unicode.IsDigit(rune(s.peek())) {
			s.advance()
		}
	}
	// An exponent: e or E, optional sign, digits.
	if b := s.peek(); b == 'e' || b == 'E' {
		save := s.pos
		s.advance()
		if s.peek() == '+' || s.peek() == '-' {
			s.advance()
		}
		if unicode.IsDigit(rune(s.peek())) {
			isReal = true
			for s.pos < len(s.src) && unicode.IsDigit(rune(s.peek())) {
				s.advance()
			}
		} else {
			s.pos = save // it was an identifier start, e.g. `2elems` (error later)
		}
	}
	text := s.src[start:s.pos]
	if isReal {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, s.errf("bad real literal %q: %v", text, err)
		}
		return Token{Kind: REAL, Real: f, Pos: pos}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, s.errf("bad natural literal %q: %v", text, err)
	}
	return Token{Kind: NAT, Nat: n, Pos: pos}, nil
}

func (s *scanner) str(pos Pos) (Token, error) {
	var raw strings.Builder
	raw.WriteByte(s.advance()) // opening quote
	for {
		if s.pos >= len(s.src) {
			return Token{}, fmt.Errorf("scan: %s: unterminated string literal", pos)
		}
		b := s.advance()
		raw.WriteByte(b)
		if b == '\\' {
			if s.pos >= len(s.src) {
				return Token{}, fmt.Errorf("scan: %s: unterminated string literal", pos)
			}
			raw.WriteByte(s.advance())
			continue
		}
		if b == '"' {
			break
		}
	}
	text, err := strconv.Unquote(raw.String())
	if err != nil {
		return Token{}, fmt.Errorf("scan: %s: bad string literal: %v", pos, err)
	}
	return Token{Kind: STRING, Text: text, Pos: pos}, nil
}
