package exchange

import (
	"fmt"
	"math"
)

// Shard envelopes: the coordinator <-> worker wire format of distributed
// scatter-gather execution (internal/cluster). A coordinator partitions a
// range-partitionable tabulation into contiguous row-major shards and ships
// each as a ShardRequest; the worker answers with a ShardResponse whose
// Values field carries the range's elements in the data exchange format —
// the same HTTP/JSON + exchange-text transport the rest of aqld speaks.

// ShardRequest asks a worker to execute one contiguous row-major range
// [Start, End) of a tabulation's element space. The worker prepares (or
// cache-hits) the plan from Query against its own environment; Shape is the
// tabulation shape the coordinator computed from the bounds, shipped so the
// worker does not re-evaluate them (which would double-count their work in
// the merged counters).
type ShardRequest struct {
	// Query is the normalized plan text; the worker's top-level expression
	// must be a tabulation for the request to be satisfiable.
	Query string `json:"query"`
	// Shape is the tabulation shape; Start/End index its row-major element
	// space, 0 <= Start <= End <= product(Shape).
	Shape []int `json:"shape"`
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Shard and Attempt identify this dispatch for diagnostics and for
	// deterministic fault injection (cluster.ChaosTransport keys on them):
	// Shard is the shard index within the query, Attempt the per-shard
	// dispatch counter (retries and hedges each get a fresh number).
	Shard   int `json:"shard"`
	Attempt int `json:"attempt"`
	// MaxSteps / TimeoutMS tighten the worker's per-request budget, exactly
	// as the same fields of a /query request do. Budgets apply per shard.
	MaxSteps  int64 `json:"max_steps,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TraceID / ParentSpan propagate the coordinator's distributed trace
	// context: the 32-hex trace id of the whole query and the 16-hex span id
	// of this dispatch attempt. HTTP transports also send them as a
	// traceparent header; the body copy keeps transports that drop headers
	// (or in-process ones) lossless. Empty when the query is untraced.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
	// Args is the argument frame of a prepared (parameterized) query: each
	// $name placeholder's value in the exchange text format. The worker
	// decodes and binds them before executing the range, so one cached plan
	// on the worker serves every argument set of the same template.
	Args map[string]string `json:"args,omitempty"`
}

// Size returns product(Shape), saturating at MaxInt64.
func (r *ShardRequest) Size() int64 {
	size := int64(1)
	for _, n := range r.Shape {
		if n < 0 {
			return -1
		}
		if n > 0 && size > math.MaxInt64/int64(n) {
			return math.MaxInt64
		}
		size *= int64(n)
	}
	return size
}

// Validate checks the envelope's structural invariants (non-negative
// dimensions, a range within the element space, a non-empty query).
func (r *ShardRequest) Validate() error {
	if r.Query == "" {
		return fmt.Errorf("shard: empty query")
	}
	if len(r.Shape) == 0 {
		return fmt.Errorf("shard: empty shape")
	}
	size := r.Size()
	if size < 0 {
		return fmt.Errorf("shard: negative dimension in shape %v", r.Shape)
	}
	if r.Start < 0 || r.End < r.Start || r.End > size {
		return fmt.Errorf("shard: range [%d, %d) outside element space of size %d", r.Start, r.End, size)
	}
	return nil
}

// ShardCounters is the evaluator work one shard execution charged; field
// names and JSON tags mirror trace.EvalCounters (exchange stays free of a
// trace dependency).
type ShardCounters struct {
	Steps       int64 `json:"steps"`
	Cells       int64 `json:"cells"`
	Tabulations int64 `json:"tabulations"`
	SetOps      int64 `json:"set_ops"`
	Iterations  int64 `json:"iterations"`
}

// ShardResponse is the worker's success body for one shard.
type ShardResponse struct {
	// ID is the worker-local request id (diagnostics).
	ID string `json:"id"`
	// Cached reports a prepared-plan cache hit on the worker.
	Cached bool `json:"cached"`
	// Values is the exchange-format vector [[v1, ..., vn]] of the range's
	// elements, in row-major order. Omitted when BottomOff >= 0: a ⊥
	// element poisons the whole tabulation, so only the first ⊥ matters.
	Values string `json:"values,omitempty"`
	// BottomOff is the absolute row-major offset of the first ⊥ element in
	// the range, or -1 when the range is ⊥-free. BottomMsg carries the ⊥
	// diagnostic so the merged result prints identically to a single-node
	// run.
	BottomOff int64  `json:"bottom_off"`
	BottomMsg string `json:"bottom_msg,omitempty"`
	// Eval is the work this shard's (winning) execution charged.
	Eval ShardCounters `json:"eval"`
	// TraceID echoes the request's trace id (diagnostics: a mismatch means a
	// proxy crossed streams).
	TraceID string `json:"trace_id,omitempty"`
	// QueueWaitNS is how long the request waited in the worker's admission
	// queue before a slot freed, in nanoseconds.
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	// Spans is the worker-side span subtree of this shard's execution, which
	// the coordinator grafts under the dispatch attempt's span to stitch the
	// whole-query trace. Nil when the worker recorded no spans.
	Spans *Span `json:"spans,omitempty"`
}

// Span is the wire form of one span-tree node a worker returns; the mirror
// of trace.SpanNode's stitching subset (exchange stays free of a trace
// dependency). Wall times are nanoseconds; counters are self counters.
type Span struct {
	Op       string        `json:"op"`
	WallNS   int64         `json:"wall_ns"`
	SelfNS   int64         `json:"self_ns"`
	Eval     ShardCounters `json:"eval,omitempty"`
	Children []*Span       `json:"children,omitempty"`
}

// ShardErrorInfo is the typed error body of a failed shard request. Kind
// uses the same vocabulary as /query errors (parse | type | resource:* |
// admission:* | shard:* | panic | eval); Off is the row-major offset at
// which a deterministic evaluation error occurred, -1 when the error is not
// tied to an element.
type ShardErrorInfo struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Off     int64  `json:"off"`
	ID      string `json:"id,omitempty"`
}

// ShardErrorEnvelope is the JSON body of every non-2xx /shard response.
type ShardErrorEnvelope struct {
	Error ShardErrorInfo `json:"error"`
}
