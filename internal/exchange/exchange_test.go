package exchange

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/aqldb/aql/internal/object"
)

func roundTrip(t *testing.T, v object.Value) {
	t.Helper()
	s, err := WriteString(v)
	if err != nil {
		t.Fatalf("write %s: %v", v, err)
	}
	back, err := ReadString(s)
	if err != nil {
		t.Fatalf("read %q: %v", s, err)
	}
	if !object.Equal(v, back) {
		t.Errorf("round trip: %s -> %q -> %s", v, s, back)
	}
}

func TestRoundTripScalars(t *testing.T) {
	for _, v := range []object.Value{
		object.True, object.False,
		object.Nat(0), object.Nat(12345),
		object.Real(0), object.Real(-2.5), object.Real(6.02e23),
		object.String_(""), object.String_("hello \"world\"\n"),
		object.Base("temp", "hot"),
		object.Bottom(""),
	} {
		roundTrip(t, v)
	}
}

func TestRoundTripStructures(t *testing.T) {
	for _, v := range []object.Value{
		object.Unit,
		object.Tuple(object.Nat(1), object.Bool(true), object.String_("x")),
		object.EmptySet,
		object.Set(object.Nat(3), object.Nat(1)),
		object.EmptyBag,
		object.Bag(object.Nat(1), object.Nat(1)),
		object.Vector(),
		object.NatVector(1, 2, 3),
		object.MustArray([]int{2, 3}, []object.Value{
			object.Nat(0), object.Nat(1), object.Nat(2),
			object.Nat(3), object.Nat(4), object.Nat(5)}),
		object.Set(object.Tuple(object.Nat(1), object.Set(object.String_("a")))),
		object.Vector(object.EmptySet, object.Set(object.Nat(1))),
	} {
		roundTrip(t, v)
	}
}

func TestReadPaperLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want object.Value
	}{
		{"[[0,31,28,31,30,31,30,31,31,30,31,30]]",
			object.NatVector(0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30)},
		{"{25,27,28}", object.Set(object.Nat(25), object.Nat(27), object.Nat(28))},
		{"(67.3, true)", object.Tuple(object.Real(67.3), object.True)},
		{"[[2, 2; 1, 2, 3, 4]]", object.MustArray([]int{2, 2},
			[]object.Value{object.Nat(1), object.Nat(2), object.Nat(3), object.Nat(4)})},
	}
	for _, tt := range tests {
		got, err := ReadString(tt.src)
		if err != nil {
			t.Fatalf("Read(%q): %v", tt.src, err)
		}
		if !object.Equal(got, tt.want) {
			t.Errorf("Read(%q) = %s, want %s", tt.src, got, tt.want)
		}
	}
}

func TestReadWhitespaceAndComments(t *testing.T) {
	src := ` { (* the hot days *) 25 , (* another *) 27 } `
	got, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(got, object.Set(object.Nat(25), object.Nat(27))) {
		t.Errorf("got %s", got)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"", "{1, 2", "[[1, 2", "(1,)", "{1 2}", "[[2; 1]]", "[[2, 2; 1, 2, 3]]",
		"-5", "1e", "foo", `"unterminated`, "1 2", "[[0; ]] extra",
	}
	for _, src := range bad {
		if v, err := ReadString(src); err == nil {
			t.Errorf("Read(%q) = %s, want error", src, v)
		}
	}
}

func TestFunctionNotSerializable(t *testing.T) {
	f := object.Func(func(v object.Value) (object.Value, error) { return v, nil })
	if _, err := WriteString(f); err == nil {
		t.Error("serializing a function should error")
	}
	if _, err := WriteString(object.Set(object.Nat(1)).Elems[0]); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestRealAlwaysRereadsAsReal(t *testing.T) {
	// A real with integral value must not come back as a nat.
	s, err := WriteString(object.Real(3))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadString(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != object.KReal {
		t.Errorf("Real(3) round-tripped to kind %s via %q", back.Kind, s)
	}
}

// randomObject builds a random serializable object for the property test.
func randomObject(rng *rand.Rand, depth int) object.Value {
	kinds := 5
	if depth > 0 {
		kinds = 9
	}
	switch rng.Intn(kinds) {
	case 0:
		return object.Bool(rng.Intn(2) == 0)
	case 1:
		return object.Nat(int64(rng.Intn(1000)))
	case 2:
		return object.Real(float64(rng.Intn(1000)) / 8)
	case 3:
		return object.String_(strings.Repeat("ab\"\\", rng.Intn(3)))
	case 4:
		return object.Base("b", "lit")
	case 5:
		return object.Tuple(randomObject(rng, depth-1), randomObject(rng, depth-1))
	case 6:
		n := rng.Intn(4)
		elems := make([]object.Value, n)
		for i := range elems {
			elems[i] = randomObject(rng, depth-1)
		}
		return object.Set(elems...)
	case 7:
		n := rng.Intn(4)
		elems := make([]object.Value, n)
		for i := range elems {
			elems[i] = randomObject(rng, depth-1)
		}
		return object.Bag(elems...)
	default:
		rows, cols := rng.Intn(3)+1, rng.Intn(3)
		data := make([]object.Value, rows*cols)
		for i := range data {
			data[i] = randomObject(rng, depth-1)
		}
		return object.MustArray([]int{rows, cols}, data)
	}
}

func TestPropRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomObject(rng, 3)
		s, err := WriteString(v)
		if err != nil {
			return false
		}
		back, err := ReadString(s)
		return err == nil && object.Equal(v, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
