package exchange

import (
	"testing"

	"github.com/aqldb/aql/internal/object"
)

// FuzzReadString asserts the exchange parser never panics, and that any
// value it accepts survives a write → read round trip.
func FuzzReadString(f *testing.F) {
	seeds := []string{
		`{25, 27, 28}`,
		`[[0, 31, 28]]`,
		`[[2, 2; 1, 2, 3, 4]]`,
		`(67.3, true, "x")`,
		`{|1, 1|}`,
		`_|_`,
		`b#"lit"`,
		`{(1, {2}), (3, {})}`,
		`(* c *) 1`,
		`[[`, `{`, `((`, `1e999`, `-`, `#`, `"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := ReadString(src)
		if err != nil {
			return
		}
		out, err := WriteString(v)
		if err != nil {
			t.Fatalf("accepted %q but cannot write %s: %v", src, v, err)
		}
		back, err := ReadString(out)
		if err != nil {
			t.Fatalf("round trip of %q failed at re-read %q: %v", src, out, err)
		}
		if !object.Equal(v, back) {
			t.Fatalf("round trip of %q changed the value: %s vs %s", src, v, back)
		}
	})
}
