package exchange

import (
	"errors"
	"strings"
	"testing"
)

func TestReadLimitsBytes(t *testing.T) {
	src := "{1, 2, 3, 4, 5}"
	if _, err := ReadLimits(strings.NewReader(src), Limits{MaxBytes: int64(len(src))}); err != nil {
		t.Fatalf("at the bound: %v", err)
	}
	_, err := ReadLimits(strings.NewReader(src), Limits{MaxBytes: int64(len(src)) - 1})
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "bytes" {
		t.Fatalf("over the bound: got %v, want bytes LimitError", err)
	}
}

func TestReadStringLimitsDepth(t *testing.T) {
	// Depth 4: set of tuple of bag of array.
	src := "{(1, {|[[7]]|}) }"
	if _, err := ReadStringLimits(src, Limits{MaxDepth: 4}); err != nil {
		t.Fatalf("at the bound: %v", err)
	}
	_, err := ReadStringLimits(src, Limits{MaxDepth: 3})
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "depth" || le.Limit != 3 {
		t.Fatalf("over the bound: got %v, want depth LimitError at 3", err)
	}
}

// TestReadLimitsDeepNesting: a pathological deeply left-nested input must be
// rejected by the depth guard rather than exhausting the parser's stack.
func TestReadLimitsDeepNesting(t *testing.T) {
	src := strings.Repeat("(", 100_000) + "1" + strings.Repeat(", 2)", 100_000)
	_, err := ReadStringLimits(src, Limits{MaxDepth: 64})
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "depth" {
		t.Fatalf("got %v, want depth LimitError", err)
	}
}

// TestReadLimitsZeroUnlimited: the zero Limits preserves the historical
// unguarded behaviour.
func TestReadLimitsZeroUnlimited(t *testing.T) {
	src := "{(1, ({|2|}, [[3, 4]]))}"
	v, err := ReadStringLimits(src, Limits{})
	if err != nil {
		t.Fatalf("unlimited read: %v", err)
	}
	round, err := WriteString(v)
	if err != nil {
		t.Fatalf("write back: %v", err)
	}
	v2, err := ReadString(round)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if v.String() != v2.String() {
		t.Fatalf("round trip diverged: %s vs %s", v, v2)
	}
}
