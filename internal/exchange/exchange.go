// Package exchange implements the complex-object data exchange format of
// section 3 of the AQL paper. The format is the textual grammar
//
//	co ::= cb | cn | true | false | (co, ..., co) | {co, ..., co} | [[co, ..., co]]
//
// extended, as in our object model, with reals, strings, uninterpreted base
// values (name#"literal"), bags ({|co, ..., co|}), the error value _|_, and
// the efficient row-major k-dimensional array literal
// [[n1, ..., nk; co, ..., co]] that section 3 adds for O(n) construction.
//
// Any driver that can produce a byte stream in this format can be registered
// as an AQL reader (section 4.1, "I/O and the NetCDF Interface"); package
// netcdf and the example weather generator both use it. Writing is exact:
// Write(v) produces text that Read parses back to a value Equal to v
// (up to bottom diagnostics, which are not values).
package exchange

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"github.com/aqldb/aql/internal/object"
)

// Write serializes a complex object to w in the exchange format.
func Write(w io.Writer, v object.Value) error {
	bw := bufio.NewWriter(w)
	if err := writeValue(bw, v); err != nil {
		return err
	}
	return bw.Flush()
}

func writeValue(w *bufio.Writer, v object.Value) error {
	// Delegate to the canonical String rendering for scalars; recurse for
	// collections to avoid building one giant string for large arrays.
	switch v.Kind {
	case object.KTuple:
		w.WriteByte('(')
		for i, e := range v.Elems {
			if i > 0 {
				w.WriteString(", ")
			}
			if err := writeValue(w, e); err != nil {
				return err
			}
		}
		w.WriteByte(')')
	case object.KSet, object.KBag:
		open, close := "{", "}"
		if v.Kind == object.KBag {
			open, close = "{|", "|}"
		}
		w.WriteString(open)
		for i, e := range v.Elems {
			if i > 0 {
				w.WriteString(", ")
			}
			if err := writeValue(w, e); err != nil {
				return err
			}
		}
		w.WriteString(close)
	case object.KArray:
		w.WriteString("[[")
		if len(v.Shape) > 1 {
			for i, n := range v.Shape {
				if i > 0 {
					w.WriteString(", ")
				}
				fmt.Fprintf(w, "%d", n)
			}
			w.WriteString("; ")
		}
		cells, err := v.Cells()
		if err != nil {
			return err
		}
		for i, e := range cells {
			if i > 0 {
				w.WriteString(", ")
			}
			if err := writeValue(w, e); err != nil {
				return err
			}
		}
		w.WriteString("]]")
	case object.KFunc:
		return fmt.Errorf("exchange: function values cannot be serialized")
	default:
		w.WriteString(v.String())
	}
	return nil
}

// WriteString serializes a complex object to a string.
func WriteString(v object.Value) (string, error) {
	var b strings.Builder
	if err := Write(&b, v); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Limits bounds what Read will accept from untrusted input. The zero value
// is unlimited (the historical behaviour); services reading exchange text
// off the wire should set both fields.
type Limits struct {
	// MaxBytes caps the input size in bytes (0 = unlimited).
	MaxBytes int64
	// MaxDepth caps composite nesting — sets, bags, tuples and arrays each
	// add one level (0 = unlimited).
	MaxDepth int
}

// LimitError is the typed error ReadLimits returns when input exceeds a
// guard; Kind is "bytes" or "depth" and Limit the bound that tripped.
type LimitError struct {
	Kind  string
	Limit int64
}

func (e *LimitError) Error() string {
	if e.Kind == "bytes" {
		return fmt.Sprintf("exchange: input exceeds %d bytes", e.Limit)
	}
	return fmt.Sprintf("exchange: nesting exceeds depth %d", e.Limit)
}

// Read parses one complex object from r. The input is read fully into
// memory first; exchange values are in-memory objects in any case.
func Read(r io.Reader) (object.Value, error) {
	return ReadLimits(r, Limits{})
}

// ReadLimits is Read under input guards: inputs over lim.MaxBytes or nested
// deeper than lim.MaxDepth fail with a *LimitError instead of being
// materialized.
func ReadLimits(r io.Reader, lim Limits) (object.Value, error) {
	if lim.MaxBytes > 0 {
		r = io.LimitReader(r, lim.MaxBytes+1)
	}
	src, err := io.ReadAll(r)
	if err != nil {
		return object.Value{}, fmt.Errorf("exchange: %w", err)
	}
	if lim.MaxBytes > 0 && int64(len(src)) > lim.MaxBytes {
		return object.Value{}, &LimitError{Kind: "bytes", Limit: lim.MaxBytes}
	}
	return ReadStringLimits(string(src), lim)
}

// ReadString parses one complex object from a string.
func ReadString(s string) (object.Value, error) {
	return ReadStringLimits(s, Limits{})
}

// ReadStringLimits is ReadString under input guards; see ReadLimits.
func ReadStringLimits(s string, lim Limits) (object.Value, error) {
	if lim.MaxBytes > 0 && int64(len(s)) > lim.MaxBytes {
		return object.Value{}, &LimitError{Kind: "bytes", Limit: lim.MaxBytes}
	}
	p := &parser{src: s, maxDepth: lim.MaxDepth}
	v, err := p.value()
	if err != nil {
		return object.Value{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return object.Value{}, p.errf("trailing input after value")
	}
	return v, nil
}

type parser struct {
	src      string
	pos      int
	depth    int
	maxDepth int
}

// enter charges one composite nesting level; exit with p.depth--.
func (p *parser) enter() error {
	p.depth++
	if p.maxDepth > 0 && p.depth > p.maxDepth {
		return &LimitError{Kind: "depth", Limit: int64(p.maxDepth)}
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("exchange: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) readByte() (byte, error) {
	if p.pos >= len(p.src) {
		return 0, io.EOF
	}
	b := p.src[p.pos]
	p.pos++
	return b, nil
}

func (p *parser) unread() { p.pos-- }

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		b := p.src[p.pos]
		if b == '(' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*' {
			p.pos += 2
			p.skipComment()
			continue
		}
		if !unicode.IsSpace(rune(b)) {
			return
		}
		p.pos++
	}
}

// skipComment consumes a (* ... *) comment body; "(*" is already consumed.
// Comments nest, as in Standard ML.
func (p *parser) skipComment() {
	depth := 1
	for depth > 0 && p.pos < len(p.src) {
		switch {
		case strings.HasPrefix(p.src[p.pos:], "(*"):
			depth++
			p.pos += 2
		case strings.HasPrefix(p.src[p.pos:], "*)"):
			depth--
			p.pos += 2
		default:
			p.pos++
		}
	}
}

// peekStr reports whether the next bytes equal s without consuming them.
func (p *parser) peekStr(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

// eat consumes s if it is next; reports whether it did.
func (p *parser) eat(s string) bool {
	if !p.peekStr(s) {
		return false
	}
	p.pos += len(s)
	return true
}

func (p *parser) expect(s string) error {
	p.skipSpace()
	if !p.eat(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) value() (object.Value, error) {
	p.skipSpace()
	switch {
	case p.eat("_|_"):
		return object.Bottom(""), nil
	case p.eat("true"):
		return object.True, nil
	case p.eat("false"):
		return object.False, nil
	case p.eat("[["):
		if err := p.enter(); err != nil {
			return object.Value{}, err
		}
		defer func() { p.depth-- }()
		return p.array()
	case p.eat("{|"):
		if err := p.enter(); err != nil {
			return object.Value{}, err
		}
		defer func() { p.depth-- }()
		elems, err := p.seq("|}")
		if err != nil {
			return object.Value{}, err
		}
		return object.Bag(elems...), nil
	case p.eat("{"):
		if err := p.enter(); err != nil {
			return object.Value{}, err
		}
		defer func() { p.depth-- }()
		elems, err := p.seq("}")
		if err != nil {
			return object.Value{}, err
		}
		return object.Set(elems...), nil
	case p.eat("("):
		if err := p.enter(); err != nil {
			return object.Value{}, err
		}
		defer func() { p.depth-- }()
		elems, err := p.seq(")")
		if err != nil {
			return object.Value{}, err
		}
		return object.Tuple(elems...), nil
	case p.peekStr(`"`):
		s, err := p.quoted()
		if err != nil {
			return object.Value{}, err
		}
		return object.String_(s), nil
	default:
		return p.scalar()
	}
}

// seq parses "co, co, ..., co CLOSE" (possibly empty).
func (p *parser) seq(close string) ([]object.Value, error) {
	p.skipSpace()
	if p.eat(close) {
		return nil, nil
	}
	var elems []object.Value
	for {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		elems = append(elems, v)
		p.skipSpace()
		if p.eat(",") {
			continue
		}
		if p.eat(close) {
			return elems, nil
		}
		return nil, p.errf("expected %q or %q in sequence", ",", close)
	}
}

// array parses the body after "[[": either a 1-d literal "co, ... ]]" or a
// row-major k-d literal "n1, ..., nk; co, ... ]]".
func (p *parser) array() (object.Value, error) {
	p.skipSpace()
	if p.eat("]]") {
		return object.Vector(), nil
	}
	var elems []object.Value
	for {
		v, err := p.value()
		if err != nil {
			return object.Value{}, err
		}
		elems = append(elems, v)
		p.skipSpace()
		if p.eat(",") {
			continue
		}
		if p.eat(";") {
			return p.arrayBody(elems)
		}
		if p.eat("]]") {
			return object.Vector(elems...), nil
		}
		return object.Value{}, p.errf("expected \",\", \";\" or \"]]\" in array literal")
	}
}

// arrayBody parses the values of a k-d row-major literal whose dimension
// prefix has been parsed into dims.
func (p *parser) arrayBody(dims []object.Value) (object.Value, error) {
	shape := make([]int, len(dims))
	for i, d := range dims {
		n, err := d.AsNat()
		if err != nil {
			return object.Value{}, p.errf("array dimension %d is not a natural number", i+1)
		}
		shape[i] = int(n)
	}
	data, err := p.seq("]]")
	if err != nil {
		return object.Value{}, err
	}
	v, err := object.Array(shape, data)
	if err != nil {
		return object.Value{}, p.errf("%v", err)
	}
	return v, nil
}

// quoted parses a Go-style double-quoted string literal.
func (p *parser) quoted() (string, error) {
	var raw strings.Builder
	b, err := p.readByte()
	if err != nil || b != '"' {
		return "", p.errf("expected string literal")
	}
	raw.WriteByte('"')
	escaped := false
	for {
		b, err := p.readByte()
		if err != nil {
			return "", p.errf("unterminated string literal")
		}
		raw.WriteByte(b)
		if escaped {
			escaped = false
			continue
		}
		if b == '\\' {
			escaped = true
		}
		if b == '"' {
			break
		}
	}
	s, err := strconv.Unquote(raw.String())
	if err != nil {
		return "", p.errf("bad string literal %s: %v", raw.String(), err)
	}
	return s, nil
}

// scalar parses a number (nat or real) or an identifier-led base value
// name#"literal".
func (p *parser) scalar() (object.Value, error) {
	var tok strings.Builder
	for {
		b, err := p.readByte()
		if err != nil {
			break
		}
		c := rune(b)
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '.' || c == '_' ||
			c == '+' || c == '-' || (tok.Len() > 0 && (c == 'e' || c == 'E')) {
			tok.WriteByte(b)
			continue
		}
		if c == '#' {
			// Base value: name#"literal".
			name := tok.String()
			if name == "" {
				return object.Value{}, p.errf("base value with empty type name")
			}
			lit, err := p.quoted()
			if err != nil {
				return object.Value{}, err
			}
			return object.Base(name, lit), nil
		}
		p.unread()
		break
	}
	s := tok.String()
	if s == "" {
		return object.Value{}, p.errf("expected a value")
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return object.Value{}, p.errf("negative literal %d is not a natural number", n)
		}
		return object.Nat(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if !object.IsFinite(f) {
			return object.Value{}, p.errf("non-finite real literal %q", s)
		}
		return object.Real(f), nil
	}
	return object.Value{}, p.errf("bad literal %q", s)
}
