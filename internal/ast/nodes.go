package ast

// CountNodes returns the number of nodes in the expression tree — the size
// measure the optimizer trace reports before and after each rewrite, and
// the EXPLAIN summary reports for the whole query.
func CountNodes(e Expr) int {
	if e == nil {
		return 0
	}
	n := 1
	for _, kid := range e.Children() {
		n += CountNodes(kid)
	}
	return n
}
