package ast

import (
	"fmt"
	"sync/atomic"
)

// FreeVars returns the set of free variables of e.
func FreeVars(e Expr) map[string]bool {
	out := map[string]bool{}
	collectFree(e, map[string]int{}, out)
	return out
}

func collectFree(e Expr, bound map[string]int, out map[string]bool) {
	if v, ok := e.(*Var); ok {
		if bound[v.Name] == 0 {
			out[v.Name] = true
		}
		return
	}
	kids := e.Children()
	binders := e.Binders()
	for i, kid := range kids {
		for _, b := range binders[i] {
			bound[b]++
		}
		collectFree(kid, bound, out)
		for _, b := range binders[i] {
			bound[b]--
		}
	}
}

// IsFree reports whether name occurs free in e.
func IsFree(name string, e Expr) bool { return FreeVars(e)[name] }

var freshCounter atomic.Int64

// Fresh returns a variable name guaranteed not to collide with any name
// produced by the parser (which never emits '%').
func Fresh(hint string) string {
	return fmt.Sprintf("%%%s%d", hint, freshCounter.Add(1))
}

// Subst returns e with every free occurrence of name replaced by repl,
// renaming binders as needed to avoid capturing free variables of repl
// (capture-avoiding substitution; the β and β^p rules of section 5 rely
// on it).
func Subst(e Expr, name string, repl Expr) Expr {
	replFree := FreeVars(repl)
	return subst(e, name, repl, replFree)
}

func subst(e Expr, name string, repl Expr, replFree map[string]bool) Expr {
	if v, ok := e.(*Var); ok {
		if v.Name == name {
			return repl
		}
		return e
	}
	kids := e.Children()
	if len(kids) == 0 {
		return e
	}
	binders := e.Binders()

	// First rename any binder of this node that would capture a free
	// variable of repl (only in children where name is still free, i.e.
	// where substitution will actually descend).
	for i := range kids {
		var renames [][2]string
		shadowed := false
		for _, b := range binders[i] {
			if b == name {
				shadowed = true
			}
		}
		if shadowed {
			continue // substitution does not descend into this child
		}
		if !IsFree(name, kids[i]) {
			continue
		}
		for _, b := range binders[i] {
			if replFree[b] {
				renames = append(renames, [2]string{b, Fresh(b)})
			}
		}
		if len(renames) > 0 {
			e = renameBinders(e, i, renames)
			kids = e.Children()
			binders = e.Binders()
		}
	}

	newKids := make([]Expr, len(kids))
	changed := false
	for i, kid := range kids {
		shadowed := false
		for _, b := range binders[i] {
			if b == name {
				shadowed = true
				break
			}
		}
		if shadowed {
			newKids[i] = kid
		} else {
			newKids[i] = subst(kid, name, repl, replFree)
			if newKids[i] != kid {
				changed = true
			}
		}
	}
	if !changed {
		return e
	}
	return e.WithChildren(newKids)
}

// renameBinders renames the given binders of child i of e (and the
// occurrences of each old name inside that child).
func renameBinders(e Expr, child int, renames [][2]string) Expr {
	kids := e.Children()
	kid := kids[child]
	for _, rn := range renames {
		kid = Subst(kid, rn[0], &Var{Name: rn[1]})
	}
	kids2 := make([]Expr, len(kids))
	copy(kids2, kids)
	kids2[child] = kid
	e2 := e.WithChildren(kids2)
	// Patch the binder names on the copied node.
	switch n := e2.(type) {
	case *Lam:
		n.Param = renamed(n.Param, renames)
	case *BigUnion:
		n.Var = renamed(n.Var, renames)
	case *Sum:
		n.Var = renamed(n.Var, renames)
	case *BigBagUnion:
		n.Var = renamed(n.Var, renames)
	case *RankUnion:
		n.Var = renamed(n.Var, renames)
		n.RankVar = renamed(n.RankVar, renames)
	case *RankBagUnion:
		n.Var = renamed(n.Var, renames)
		n.RankVar = renamed(n.RankVar, renames)
	case *ArrayTab:
		idx := make([]string, len(n.Idx))
		for j, v := range n.Idx {
			idx[j] = renamed(v, renames)
		}
		n.Idx = idx
	default:
		panic("ast: renameBinders on non-binding node " + NodeName(e2))
	}
	return e2
}

func renamed(name string, renames [][2]string) string {
	for _, rn := range renames {
		if rn[0] == name {
			return rn[1]
		}
	}
	return name
}

// AlphaEqual reports whether two expressions are equal up to consistent
// renaming of bound variables. Used by the optimizer tests (the paper's
// normal-form comparisons are all "up to variable renaming").
func AlphaEqual(a, b Expr) bool { return alphaEq(a, b, map[string]string{}, map[string]string{}) }

// alphaEq compares under two renaming environments mapping bound names to
// shared canonical names.
func alphaEq(a, b Expr, envA, envB map[string]string) bool {
	va, okA := a.(*Var)
	vb, okB := b.(*Var)
	if okA != okB {
		return false
	}
	if okA {
		ca, boundA := envA[va.Name]
		cb, boundB := envB[vb.Name]
		if boundA != boundB {
			return false
		}
		if boundA {
			return ca == cb
		}
		return va.Name == vb.Name
	}
	if !sameShape(a, b) {
		return false
	}
	kidsA, kidsB := a.Children(), b.Children()
	if len(kidsA) != len(kidsB) {
		return false
	}
	bindA, bindB := a.Binders(), b.Binders()
	for i := range kidsA {
		if len(bindA[i]) != len(bindB[i]) {
			return false
		}
		ea, eb := envA, envB
		if len(bindA[i]) > 0 {
			ea, eb = copyEnv(envA), copyEnv(envB)
			for j := range bindA[i] {
				canon := Fresh("ae")
				ea[bindA[i][j]] = canon
				eb[bindB[i][j]] = canon
			}
		}
		if !alphaEq(kidsA[i], kidsB[i], ea, eb) {
			return false
		}
	}
	return true
}

func copyEnv(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sameShape compares the non-child, non-binder payload of two nodes.
func sameShape(a, b Expr) bool {
	switch x := a.(type) {
	case *Param:
		y, ok := b.(*Param)
		return ok && x.Name == y.Name
	case *Proj:
		y, ok := b.(*Proj)
		return ok && x.I == y.I && x.K == y.K
	case *BoolLit:
		y, ok := b.(*BoolLit)
		return ok && x.Val == y.Val
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op
	case *NatLit:
		y, ok := b.(*NatLit)
		return ok && x.Val == y.Val
	case *RealLit:
		y, ok := b.(*RealLit)
		return ok && x.Val == y.Val
	case *StringLit:
		y, ok := b.(*StringLit)
		return ok && x.Val == y.Val
	case *Arith:
		y, ok := b.(*Arith)
		return ok && x.Op == y.Op
	case *Dim:
		y, ok := b.(*Dim)
		return ok && x.K == y.K
	case *Index:
		y, ok := b.(*Index)
		return ok && x.K == y.K
	case *MkArray:
		y, ok := b.(*MkArray)
		return ok && len(x.Dims) == len(y.Dims)
	case *Tuple:
		y, ok := b.(*Tuple)
		return ok && len(x.Elems) == len(y.Elems)
	case *ArrayTab:
		y, ok := b.(*ArrayTab)
		return ok && len(x.Idx) == len(y.Idx)
	default:
		return NodeName(a) == NodeName(b)
	}
}

// Size returns the number of nodes in e; useful for optimizer budget checks
// and tests.
func Size(e Expr) int {
	n := 1
	for _, kid := range e.Children() {
		n += Size(kid)
	}
	return n
}
