package ast

import (
	"fmt"
	"strings"
)

// String renders each node in a concrete syntax close to the paper's
// mathematical notation, e.g.
//
//	U{ {x} | x in gen(10) }
//	[[ A[i] | i < len(A) ]]
//	\x. pi_1,2(x)
//
// The rendering is for diagnostics and tests; it is not re-parsed.

func (e *Var) String() string       { return e.Name }
func (e *Param) String() string     { return "$" + e.Name }
func (e *Lam) String() string       { return fmt.Sprintf("\\%s. %s", e.Param, e.Body) }
func (e *App) String() string       { return fmt.Sprintf("%s(%s)", parens(e.Fn), e.Arg) }
func (e *EmptySet) String() string  { return "{}" }
func (e *Singleton) String() string { return fmt.Sprintf("{%s}", e.Elem) }
func (e *Union) String() string     { return fmt.Sprintf("(%s union %s)", e.L, e.R) }
func (e *Get) String() string       { return fmt.Sprintf("get(%s)", e.Set) }
func (e *NatLit) String() string    { return fmt.Sprintf("%d", e.Val) }
func (e *RealLit) String() string   { return fmt.Sprintf("%g", e.Val) }
func (e *StringLit) String() string { return fmt.Sprintf("%q", e.Val) }
func (e *Gen) String() string       { return fmt.Sprintf("gen(%s)", e.N) }
func (e *Bottom) String() string    { return "_|_" }
func (e *EmptyBag) String() string  { return "{||}" }

func (e *BoolLit) String() string {
	if e.Val {
		return "true"
	}
	return "false"
}

func (e *Tuple) String() string {
	parts := make([]string, len(e.Elems))
	for i, x := range e.Elems {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e *Proj) String() string {
	return fmt.Sprintf("pi_%d,%d(%s)", e.I, e.K, e.Tuple)
}

func (e *BigUnion) String() string {
	return fmt.Sprintf("U{ %s | %s in %s }", e.Head, e.Var, e.Over)
}

func (e *If) String() string {
	return fmt.Sprintf("(if %s then %s else %s)", e.Cond, e.Then, e.Else)
}

func (e *Cmp) String() string   { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *Arith) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

func (e *Sum) String() string {
	return fmt.Sprintf("sum{ %s | %s in %s }", e.Head, e.Var, e.Over)
}

func (e *ArrayTab) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[[ %s | ", e.Head)
	for j := range e.Idx {
		if j > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s < %s", e.Idx[j], e.Bounds[j])
	}
	b.WriteString(" ]]")
	return b.String()
}

func (e *Subscript) String() string {
	return fmt.Sprintf("%s[%s]", parens(e.Arr), e.Index)
}

func (e *Dim) String() string   { return fmt.Sprintf("dim_%d(%s)", e.K, e.Arr) }
func (e *Index) String() string { return fmt.Sprintf("index_%d(%s)", e.K, e.Set) }

func (e *MkArray) String() string {
	var b strings.Builder
	b.WriteString("[[")
	for i, d := range e.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteString("; ")
	for i, x := range e.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(x.String())
	}
	b.WriteString("]]")
	return b.String()
}

func (e *SingletonBag) String() string { return fmt.Sprintf("{|%s|}", e.Elem) }
func (e *BagUnion) String() string     { return fmt.Sprintf("(%s uplus %s)", e.L, e.R) }

func (e *BigBagUnion) String() string {
	return fmt.Sprintf("U+{| %s | %s in %s |}", e.Head, e.Var, e.Over)
}

func (e *RankUnion) String() string {
	return fmt.Sprintf("Ur{ %s | %s_%s in %s }", e.Head, e.Var, e.RankVar, e.Over)
}

func (e *RankBagUnion) String() string {
	return fmt.Sprintf("U+r{| %s | %s_%s in %s |}", e.Head, e.Var, e.RankVar, e.Over)
}

// parens wraps compound expressions that would be ambiguous in head
// position (application and subscripting).
func parens(e Expr) string {
	switch e.(type) {
	case *Var, *Param, *App, *Subscript, *Tuple, *NatLit:
		return e.String()
	}
	return "(" + e.String() + ")"
}
