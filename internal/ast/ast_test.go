package ast

import (
	"strings"
	"testing"
)

// mkMap builds map f A = [[ f(A[i]) | i < dim_1(A) ]] for reuse in tests.
func mkMap(f, a Expr) Expr {
	return &ArrayTab{
		Head:   &App{Fn: f, Arg: &Subscript{Arr: a, Index: &Var{Name: "i"}}},
		Idx:    []string{"i"},
		Bounds: []Expr{&Dim{K: 1, Arr: a}},
	}
}

func TestFreeVars(t *testing.T) {
	tests := []struct {
		e    Expr
		want []string
	}{
		{&Var{Name: "x"}, []string{"x"}},
		{&Lam{Param: "x", Body: &Var{Name: "x"}}, nil},
		{&Lam{Param: "x", Body: &Var{Name: "y"}}, []string{"y"}},
		{&BigUnion{Head: &Singleton{Elem: &Var{Name: "x"}}, Var: "x", Over: &Var{Name: "S"}}, []string{"S"}},
		{&Sum{Head: &Var{Name: "x"}, Var: "x", Over: &Var{Name: "x"}}, []string{"x"}}, // Over is outside the binder
		{&ArrayTab{Head: &Var{Name: "i"}, Idx: []string{"i"}, Bounds: []Expr{&Var{Name: "n"}}}, []string{"n"}},
		{&ArrayTab{Head: &Var{Name: "j"}, Idx: []string{"i"}, Bounds: []Expr{&Var{Name: "i"}}}, []string{"i", "j"}},
		{&RankUnion{Head: &Tuple{Elems: []Expr{&Var{Name: "x"}, &Var{Name: "r"}}}, Var: "x", RankVar: "r", Over: &Var{Name: "S"}}, []string{"S"}},
		{mkMap(&Var{Name: "f"}, &Var{Name: "A"}), []string{"A", "f"}},
	}
	for _, tt := range tests {
		got := FreeVars(tt.e)
		if len(got) != len(tt.want) {
			t.Errorf("FreeVars(%s) = %v, want %v", tt.e, got, tt.want)
			continue
		}
		for _, w := range tt.want {
			if !got[w] {
				t.Errorf("FreeVars(%s) missing %q", tt.e, w)
			}
		}
	}
}

func TestSubstBasic(t *testing.T) {
	// (x + y){x := 1} = 1 + y
	e := &Arith{Op: OpAdd, L: &Var{Name: "x"}, R: &Var{Name: "y"}}
	got := Subst(e, "x", &NatLit{Val: 1})
	want := &Arith{Op: OpAdd, L: &NatLit{Val: 1}, R: &Var{Name: "y"}}
	if !AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestSubstShadowing(t *testing.T) {
	// (\x. x + y){x := 1} leaves the bound x alone.
	e := &Lam{Param: "x", Body: &Arith{Op: OpAdd, L: &Var{Name: "x"}, R: &Var{Name: "y"}}}
	got := Subst(e, "x", &NatLit{Val: 1})
	if !AlphaEqual(got, e) {
		t.Errorf("shadowed substitution changed %s to %s", e, got)
	}
	// But the free y is substituted.
	got = Subst(e, "y", &NatLit{Val: 2})
	want := &Lam{Param: "x", Body: &Arith{Op: OpAdd, L: &Var{Name: "x"}, R: &NatLit{Val: 2}}}
	if !AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// (\y. x + y){x := y} must NOT capture: result is \y'. y + y'.
	e := &Lam{Param: "y", Body: &Arith{Op: OpAdd, L: &Var{Name: "x"}, R: &Var{Name: "y"}}}
	got := Subst(e, "x", &Var{Name: "y"})
	lam, ok := got.(*Lam)
	if !ok {
		t.Fatalf("got %s", got)
	}
	if lam.Param == "y" {
		t.Fatalf("capture: %s", got)
	}
	body, ok := lam.Body.(*Arith)
	if !ok {
		t.Fatalf("body %s", lam.Body)
	}
	if l, ok := body.L.(*Var); !ok || l.Name != "y" {
		t.Errorf("substituted variable wrong: %s", got)
	}
	if r, ok := body.R.(*Var); !ok || r.Name != lam.Param {
		t.Errorf("bound occurrence not renamed consistently: %s", got)
	}
}

func TestSubstCaptureAvoidanceInArrayTab(t *testing.T) {
	// [[ x | i < n ]]{x := i} must rename the tabulation index.
	e := &ArrayTab{Head: &Var{Name: "x"}, Idx: []string{"i"}, Bounds: []Expr{&Var{Name: "n"}}}
	got := Subst(e, "x", &Var{Name: "i"})
	tab, ok := got.(*ArrayTab)
	if !ok {
		t.Fatalf("got %s", got)
	}
	if tab.Idx[0] == "i" {
		t.Fatalf("capture in tabulation: %s", got)
	}
	if h, ok := tab.Head.(*Var); !ok || h.Name != "i" {
		t.Errorf("head should be the free i: %s", got)
	}
	// The bound in ArrayTab is outside the binder: [[ e | i < i ]]{...}
	// substitution in bounds must still happen.
	e2 := &ArrayTab{Head: &NatLit{Val: 0}, Idx: []string{"i"}, Bounds: []Expr{&Var{Name: "x"}}}
	got2 := Subst(e2, "x", &NatLit{Val: 5}).(*ArrayTab)
	if n, ok := got2.Bounds[0].(*NatLit); !ok || n.Val != 5 {
		t.Errorf("bound not substituted: %s", got2)
	}
}

func TestSubstNoOpSharesStructure(t *testing.T) {
	e := mkMap(&Var{Name: "f"}, &Var{Name: "A"})
	got := Subst(e, "zzz", &NatLit{Val: 0})
	if got != e {
		t.Error("substitution of absent variable should return the same node")
	}
}

func TestAlphaEqual(t *testing.T) {
	id1 := &Lam{Param: "x", Body: &Var{Name: "x"}}
	id2 := &Lam{Param: "y", Body: &Var{Name: "y"}}
	if !AlphaEqual(id1, id2) {
		t.Error("\\x.x and \\y.y should be alpha-equal")
	}
	k1 := &Lam{Param: "x", Body: &Var{Name: "z"}}
	k2 := &Lam{Param: "y", Body: &Var{Name: "z"}}
	if !AlphaEqual(k1, k2) {
		t.Error("\\x.z and \\y.z should be alpha-equal")
	}
	if AlphaEqual(id1, k1) {
		t.Error("\\x.x and \\x.z should differ")
	}
	// Free variables must match by name.
	if AlphaEqual(&Var{Name: "a"}, &Var{Name: "b"}) {
		t.Error("distinct free variables reported equal")
	}
	// Multi-binder nodes.
	r1 := &RankUnion{Head: &Tuple{Elems: []Expr{&Var{Name: "x"}, &Var{Name: "i"}}}, Var: "x", RankVar: "i", Over: &Var{Name: "S"}}
	r2 := &RankUnion{Head: &Tuple{Elems: []Expr{&Var{Name: "a"}, &Var{Name: "b"}}}, Var: "a", RankVar: "b", Over: &Var{Name: "S"}}
	r3 := &RankUnion{Head: &Tuple{Elems: []Expr{&Var{Name: "b"}, &Var{Name: "a"}}}, Var: "a", RankVar: "b", Over: &Var{Name: "S"}}
	if !AlphaEqual(r1, r2) {
		t.Error("rank unions alpha-equal expected")
	}
	if AlphaEqual(r1, r3) {
		t.Error("swapped binders should not be alpha-equal")
	}
	// Tabulations with different index names.
	t1 := &ArrayTab{Head: &Var{Name: "i"}, Idx: []string{"i"}, Bounds: []Expr{&NatLit{Val: 3}}}
	t2 := &ArrayTab{Head: &Var{Name: "j"}, Idx: []string{"j"}, Bounds: []Expr{&NatLit{Val: 3}}}
	if !AlphaEqual(t1, t2) {
		t.Error("tabulations alpha-equal expected")
	}
	// Payload differences.
	if AlphaEqual(&NatLit{Val: 1}, &NatLit{Val: 2}) {
		t.Error("different nat literals equal")
	}
	if AlphaEqual(&Cmp{Op: OpLt, L: id1, R: id1}, &Cmp{Op: OpLe, L: id1, R: id1}) {
		t.Error("different comparison ops equal")
	}
	if AlphaEqual(&Proj{I: 1, K: 2, Tuple: &Var{Name: "x"}}, &Proj{I: 2, K: 2, Tuple: &Var{Name: "x"}}) {
		t.Error("different projections equal")
	}
}

func TestWithChildrenRoundTrip(t *testing.T) {
	// For every node type: WithChildren(Children()) must be alpha-equal to
	// the original, and Binders must align with Children.
	exprs := []Expr{
		&Var{Name: "x"},
		&Param{Name: "q"},
		&Lam{Param: "x", Body: &Var{Name: "x"}},
		&App{Fn: &Var{Name: "f"}, Arg: &Var{Name: "x"}},
		&Tuple{Elems: []Expr{&NatLit{Val: 1}, &NatLit{Val: 2}}},
		&Proj{I: 1, K: 2, Tuple: &Var{Name: "p"}},
		&EmptySet{},
		&Singleton{Elem: &NatLit{Val: 1}},
		&Union{L: &EmptySet{}, R: &EmptySet{}},
		&BigUnion{Head: &Singleton{Elem: &Var{Name: "x"}}, Var: "x", Over: &Var{Name: "S"}},
		&Get{Set: &Var{Name: "S"}},
		&BoolLit{Val: true},
		&If{Cond: &BoolLit{Val: true}, Then: &NatLit{Val: 1}, Else: &NatLit{Val: 2}},
		&Cmp{Op: OpEq, L: &NatLit{Val: 1}, R: &NatLit{Val: 1}},
		&NatLit{Val: 7},
		&RealLit{Val: 2.5},
		&StringLit{Val: "s"},
		&Arith{Op: OpAdd, L: &NatLit{Val: 1}, R: &NatLit{Val: 2}},
		&Gen{N: &NatLit{Val: 5}},
		&Sum{Head: &Var{Name: "x"}, Var: "x", Over: &Var{Name: "S"}},
		&ArrayTab{Head: &Var{Name: "i"}, Idx: []string{"i"}, Bounds: []Expr{&NatLit{Val: 3}}},
		&Subscript{Arr: &Var{Name: "A"}, Index: &NatLit{Val: 0}},
		&Dim{K: 2, Arr: &Var{Name: "A"}},
		&Index{K: 1, Set: &Var{Name: "S"}},
		&MkArray{Dims: []Expr{&NatLit{Val: 2}}, Elems: []Expr{&NatLit{Val: 1}, &NatLit{Val: 2}}},
		&Bottom{},
		&EmptyBag{},
		&SingletonBag{Elem: &NatLit{Val: 1}},
		&BagUnion{L: &EmptyBag{}, R: &EmptyBag{}},
		&BigBagUnion{Head: &SingletonBag{Elem: &Var{Name: "x"}}, Var: "x", Over: &Var{Name: "B"}},
		&RankUnion{Head: &Singleton{Elem: &Var{Name: "i"}}, Var: "x", RankVar: "i", Over: &Var{Name: "S"}},
		&RankBagUnion{Head: &SingletonBag{Elem: &Var{Name: "i"}}, Var: "x", RankVar: "i", Over: &Var{Name: "B"}},
	}
	if len(exprs) != len(AllNodeNames()) {
		t.Fatalf("test covers %d node types, ast declares %d", len(exprs), len(AllNodeNames()))
	}
	seen := map[string]bool{}
	for _, e := range exprs {
		seen[NodeName(e)] = true
		kids := e.Children()
		if got := e.WithChildren(kids); !AlphaEqual(e, got) {
			t.Errorf("%s: WithChildren(Children()) = %s, not alpha-equal", NodeName(e), got)
		}
		if len(e.Binders()) != len(kids) {
			t.Errorf("%s: Binders/Children misaligned: %d vs %d", NodeName(e), len(e.Binders()), len(kids))
		}
		if e.String() == "" {
			t.Errorf("%s: empty String()", NodeName(e))
		}
	}
	for _, name := range AllNodeNames() {
		if !seen[name] {
			t.Errorf("node %s not covered", name)
		}
	}
}

func TestSize(t *testing.T) {
	e := mkMap(&Var{Name: "f"}, &Var{Name: "A"})
	// ArrayTab + App + Var(f) + Subscript + Var(A) + Var(i) + Dim + Var(A) = 8
	if got := Size(e); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
}

func TestFreshNeverCollidesWithSourceNames(t *testing.T) {
	for i := 0; i < 10; i++ {
		f := Fresh("x")
		if !strings.HasPrefix(f, "%") {
			t.Fatalf("fresh name %q lacks the reserved prefix", f)
		}
	}
	a, b := Fresh("x"), Fresh("x")
	if a == b {
		t.Error("fresh names not unique")
	}
}

func TestStringRendering(t *testing.T) {
	e := &ArrayTab{
		Head:   &Subscript{Arr: &Var{Name: "A"}, Index: &Arith{Op: OpMul, L: &Var{Name: "i"}, R: &NatLit{Val: 2}}},
		Idx:    []string{"i"},
		Bounds: []Expr{&Arith{Op: OpDiv, L: &Dim{K: 1, Arr: &Var{Name: "A"}}, R: &NatLit{Val: 2}}},
	}
	want := "[[ A[(i * 2)] | i < (dim_1(A) / 2) ]]"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
