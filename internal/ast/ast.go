// Package ast defines the abstract syntax of NRCA, the nested relational
// calculus with multidimensional arrays (figure 1 of the paper), extended
// with:
//
//   - real and string literals (the implementation's base types, section 4.2);
//   - the O(n) row-major array literal [[n1,...,nk; e0,...]] of section 3;
//   - the ranked union constructs ⋃_r and ⊎_r and the bag constructs of the
//     expressiveness study (section 6);
//   - free variables referring to registered external primitives
//     (section 4.1, "Openness").
//
// Surface AQL (comprehensions, patterns, blocks) is desugared into this
// calculus by package desugar; the optimizer (package opt) rewrites it; the
// evaluator (package eval) executes it.
//
// Every node implements Children/WithChildren for generic traversal and
// Binders, which reports the variables each child is evaluated under; the
// rewriter uses these to implement capture-avoiding rules generically.
package ast

import "fmt"

// Expr is a core-calculus expression.
type Expr interface {
	// Children returns the immediate subexpressions in a fixed order.
	Children() []Expr
	// WithChildren returns a copy of the node with the subexpressions
	// replaced. len(kids) must equal len(Children()).
	WithChildren(kids []Expr) Expr
	// Binders returns, for each child, the variables bound in that child's
	// scope by this node. Children and Binders are index-aligned.
	Binders() [][]string
	// String renders the expression in a concrete syntax close to the
	// paper's notation.
	String() string
}

// CmpOp is a comparison operator (figure 1, Booleans row).
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "<>"
	OpLt CmpOp = "<"
	OpGt CmpOp = ">"
	OpLe CmpOp = "<="
	OpGe CmpOp = ">="
)

// ArithOp is an arithmetic operator (figure 1, Naturals row). Subtraction
// is monus on naturals. The operators are overloaded at reals by the
// typechecker.
type ArithOp string

// Arithmetic operators.
const (
	OpAdd ArithOp = "+"
	OpSub ArithOp = "-" // monus on nat
	OpMul ArithOp = "*"
	OpDiv ArithOp = "/"
	OpMod ArithOp = "%"
)

// --- Variables and functions -------------------------------------------

// Var is a variable occurrence: a lambda- or comprehension-bound variable,
// a top-level val, or the name of a registered primitive.
type Var struct{ Name string }

// Param is the input placeholder $name of a prepared query: a typed hole
// filled per execution from the argument frame. It is a leaf — macro
// expansion and substitution never touch it, and the optimizer treats it as
// an opaque constant (its value is unknown at rewrite time).
type Param struct{ Name string }

// Lam is lambda abstraction λx.e. Patterns are desugared away before the
// core calculus, so the parameter is a bare variable.
type Lam struct {
	Param string
	Body  Expr
}

// App is function application e1(e2).
type App struct{ Fn, Arg Expr }

// --- Products ------------------------------------------------------------

// Tuple is (e1, ..., ek) with k >= 2, or the unit value () with k == 0.
type Tuple struct{ Elems []Expr }

// Proj is π_{i,k}(e), the i-th projection (1-based) from a k-tuple.
type Proj struct {
	I, K  int
	Tuple Expr
}

// --- Sets ---------------------------------------------------------------

// EmptySet is {}.
type EmptySet struct{}

// Singleton is {e}.
type Singleton struct{ Elem Expr }

// Union is e1 ∪ e2.
type Union struct{ L, R Expr }

// BigUnion is ⋃{ e1 | x ∈ e2 }: the union of the sets obtained by applying
// λx.e1 to each element of the set e2.
type BigUnion struct {
	Head Expr
	Var  string
	Over Expr
}

// Get is get(e): the unique element of a singleton set, ⊥ otherwise.
type Get struct{ Set Expr }

// --- Booleans and conditionals -------------------------------------------

// BoolLit is true or false.
type BoolLit struct{ Val bool }

// If is if e1 then e2 else e3.
type If struct{ Cond, Then, Else Expr }

// Cmp is e1 op e2 for op ∈ {=, <>, <, >, <=, >=}. Comparison is at any
// orderable object type, via the lifted linear order <=_t.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// --- Natural numbers ------------------------------------------------------

// NatLit is a natural-number constant.
type NatLit struct{ Val int64 }

// RealLit is a real constant (implementation extension).
type RealLit struct{ Val float64 }

// StringLit is a string constant (implementation extension).
type StringLit struct{ Val string }

// Arith is e1 op e2 for op ∈ {+, -, *, /, %}, overloaded at nat and real.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Gen is gen(e) = {0, ..., e-1}.
type Gen struct{ N Expr }

// Sum is Σ{ e1 | x ∈ e2 }: the sum of λx.e1 applied to each element of e2.
type Sum struct {
	Head Expr
	Var  string
	Over Expr
}

// --- Arrays ---------------------------------------------------------------

// ArrayTab is the tabulation construct [[ e | i1 < e1, ..., ik < ek ]]: the
// k-dimensional array whose j-th dimension has length e_j and whose values
// are given by λ(i1,...,ik).e — a bounded λ-abstraction (section 2).
type ArrayTab struct {
	Head   Expr
	Idx    []string // the bound index variables i1, ..., ik
	Bounds []Expr   // the dimension lengths e1, ..., ek
}

// Subscript is e1[e2]: array subscripting (partial function application).
// For k-dimensional arrays the index is a k-tuple of naturals.
type Subscript struct{ Arr, Index Expr }

// Dim is dim_k(e): the dimensions of an array — a nat when k = 1, a k-tuple
// of nats otherwise.
type Dim struct {
	K   int
	Arr Expr
}

// Index is index_k(e): converts a set of (key, value) pairs with keys in N^k
// into the k-dimensional array of groups of values (figure 1; section 2).
type Index struct {
	K   int
	Set Expr
}

// MkArray is the efficient row-major literal [[ n1,...,nk ; e0, e1, ... ]]
// of section 3. Dims are the k dimension expressions; Elems the values in
// row-major order. It is ⊥ if the element count does not match the product
// of the dimensions.
type MkArray struct {
	Dims  []Expr
	Elems []Expr
}

// --- Errors ---------------------------------------------------------------

// Bottom is the error value ⊥, introduced explicitly so that optimization
// rules can express partiality (sections 2 and 5).
type Bottom struct{}

// --- Bags and ranking (section 6) ------------------------------------------

// EmptyBag is {||}.
type EmptyBag struct{}

// SingletonBag is {|e|}.
type SingletonBag struct{ Elem Expr }

// BagUnion is e1 ⊎ e2 (multiplicities add).
type BagUnion struct{ L, R Expr }

// BigBagUnion is ⊎{| e1 | x ∈ e2 |}.
type BigBagUnion struct {
	Head Expr
	Var  string
	Over Expr
}

// RankUnion is ⋃_r{ e1 | x_i ∈ e2 }: like BigUnion, but the body is also
// given the 1-based rank i of x in the linear order on e2 (section 6).
type RankUnion struct {
	Head    Expr
	Var     string // x, bound to each element
	RankVar string // i, bound to the element's rank (1-based)
	Over    Expr
}

// RankBagUnion is ⊎_r{| e1 | x_i ∈ e2 |}: the bag analogue; equal values
// receive consecutive ranks (section 6).
type RankBagUnion struct {
	Head    Expr
	Var     string
	RankVar string
	Over    Expr
}

// --- Children / WithChildren / Binders -------------------------------------

func none() [][]string { return nil }

// Var
func (e *Var) Children() []Expr           { return nil }
func (e *Var) WithChildren(k []Expr) Expr { return e }
func (e *Var) Binders() [][]string        { return none() }

// Param
func (e *Param) Children() []Expr           { return nil }
func (e *Param) WithChildren(k []Expr) Expr { return e }
func (e *Param) Binders() [][]string        { return none() }

// Lam
func (e *Lam) Children() []Expr           { return []Expr{e.Body} }
func (e *Lam) WithChildren(k []Expr) Expr { return &Lam{Param: e.Param, Body: k[0]} }
func (e *Lam) Binders() [][]string        { return [][]string{{e.Param}} }

// App
func (e *App) Children() []Expr           { return []Expr{e.Fn, e.Arg} }
func (e *App) WithChildren(k []Expr) Expr { return &App{Fn: k[0], Arg: k[1]} }
func (e *App) Binders() [][]string        { return [][]string{nil, nil} }

// Tuple
func (e *Tuple) Children() []Expr           { return e.Elems }
func (e *Tuple) WithChildren(k []Expr) Expr { return &Tuple{Elems: k} }
func (e *Tuple) Binders() [][]string        { return make([][]string, len(e.Elems)) }

// Proj
func (e *Proj) Children() []Expr           { return []Expr{e.Tuple} }
func (e *Proj) WithChildren(k []Expr) Expr { return &Proj{I: e.I, K: e.K, Tuple: k[0]} }
func (e *Proj) Binders() [][]string        { return [][]string{nil} }

// EmptySet
func (e *EmptySet) Children() []Expr           { return nil }
func (e *EmptySet) WithChildren(k []Expr) Expr { return e }
func (e *EmptySet) Binders() [][]string        { return none() }

// Singleton
func (e *Singleton) Children() []Expr           { return []Expr{e.Elem} }
func (e *Singleton) WithChildren(k []Expr) Expr { return &Singleton{Elem: k[0]} }
func (e *Singleton) Binders() [][]string        { return [][]string{nil} }

// Union
func (e *Union) Children() []Expr           { return []Expr{e.L, e.R} }
func (e *Union) WithChildren(k []Expr) Expr { return &Union{L: k[0], R: k[1]} }
func (e *Union) Binders() [][]string        { return [][]string{nil, nil} }

// BigUnion
func (e *BigUnion) Children() []Expr { return []Expr{e.Head, e.Over} }
func (e *BigUnion) WithChildren(k []Expr) Expr {
	return &BigUnion{Head: k[0], Var: e.Var, Over: k[1]}
}
func (e *BigUnion) Binders() [][]string { return [][]string{{e.Var}, nil} }

// Get
func (e *Get) Children() []Expr           { return []Expr{e.Set} }
func (e *Get) WithChildren(k []Expr) Expr { return &Get{Set: k[0]} }
func (e *Get) Binders() [][]string        { return [][]string{nil} }

// BoolLit
func (e *BoolLit) Children() []Expr           { return nil }
func (e *BoolLit) WithChildren(k []Expr) Expr { return e }
func (e *BoolLit) Binders() [][]string        { return none() }

// If
func (e *If) Children() []Expr           { return []Expr{e.Cond, e.Then, e.Else} }
func (e *If) WithChildren(k []Expr) Expr { return &If{Cond: k[0], Then: k[1], Else: k[2]} }
func (e *If) Binders() [][]string        { return [][]string{nil, nil, nil} }

// Cmp
func (e *Cmp) Children() []Expr           { return []Expr{e.L, e.R} }
func (e *Cmp) WithChildren(k []Expr) Expr { return &Cmp{Op: e.Op, L: k[0], R: k[1]} }
func (e *Cmp) Binders() [][]string        { return [][]string{nil, nil} }

// NatLit
func (e *NatLit) Children() []Expr           { return nil }
func (e *NatLit) WithChildren(k []Expr) Expr { return e }
func (e *NatLit) Binders() [][]string        { return none() }

// RealLit
func (e *RealLit) Children() []Expr           { return nil }
func (e *RealLit) WithChildren(k []Expr) Expr { return e }
func (e *RealLit) Binders() [][]string        { return none() }

// StringLit
func (e *StringLit) Children() []Expr           { return nil }
func (e *StringLit) WithChildren(k []Expr) Expr { return e }
func (e *StringLit) Binders() [][]string        { return none() }

// Arith
func (e *Arith) Children() []Expr           { return []Expr{e.L, e.R} }
func (e *Arith) WithChildren(k []Expr) Expr { return &Arith{Op: e.Op, L: k[0], R: k[1]} }
func (e *Arith) Binders() [][]string        { return [][]string{nil, nil} }

// Gen
func (e *Gen) Children() []Expr           { return []Expr{e.N} }
func (e *Gen) WithChildren(k []Expr) Expr { return &Gen{N: k[0]} }
func (e *Gen) Binders() [][]string        { return [][]string{nil} }

// Sum
func (e *Sum) Children() []Expr           { return []Expr{e.Head, e.Over} }
func (e *Sum) WithChildren(k []Expr) Expr { return &Sum{Head: k[0], Var: e.Var, Over: k[1]} }
func (e *Sum) Binders() [][]string        { return [][]string{{e.Var}, nil} }

// ArrayTab
func (e *ArrayTab) Children() []Expr {
	kids := make([]Expr, 0, len(e.Bounds)+1)
	kids = append(kids, e.Head)
	kids = append(kids, e.Bounds...)
	return kids
}
func (e *ArrayTab) WithChildren(k []Expr) Expr {
	return &ArrayTab{Head: k[0], Idx: e.Idx, Bounds: k[1:]}
}
func (e *ArrayTab) Binders() [][]string {
	// The head is evaluated under all index variables; the bounds under none.
	b := make([][]string, len(e.Bounds)+1)
	b[0] = e.Idx
	return b
}

// Subscript
func (e *Subscript) Children() []Expr           { return []Expr{e.Arr, e.Index} }
func (e *Subscript) WithChildren(k []Expr) Expr { return &Subscript{Arr: k[0], Index: k[1]} }
func (e *Subscript) Binders() [][]string        { return [][]string{nil, nil} }

// Dim
func (e *Dim) Children() []Expr           { return []Expr{e.Arr} }
func (e *Dim) WithChildren(k []Expr) Expr { return &Dim{K: e.K, Arr: k[0]} }
func (e *Dim) Binders() [][]string        { return [][]string{nil} }

// Index
func (e *Index) Children() []Expr           { return []Expr{e.Set} }
func (e *Index) WithChildren(k []Expr) Expr { return &Index{K: e.K, Set: k[0]} }
func (e *Index) Binders() [][]string        { return [][]string{nil} }

// MkArray
func (e *MkArray) Children() []Expr {
	kids := make([]Expr, 0, len(e.Dims)+len(e.Elems))
	kids = append(kids, e.Dims...)
	kids = append(kids, e.Elems...)
	return kids
}
func (e *MkArray) WithChildren(k []Expr) Expr {
	return &MkArray{Dims: k[:len(e.Dims)], Elems: k[len(e.Dims):]}
}
func (e *MkArray) Binders() [][]string { return make([][]string, len(e.Dims)+len(e.Elems)) }

// Bottom
func (e *Bottom) Children() []Expr           { return nil }
func (e *Bottom) WithChildren(k []Expr) Expr { return e }
func (e *Bottom) Binders() [][]string        { return none() }

// EmptyBag
func (e *EmptyBag) Children() []Expr           { return nil }
func (e *EmptyBag) WithChildren(k []Expr) Expr { return e }
func (e *EmptyBag) Binders() [][]string        { return none() }

// SingletonBag
func (e *SingletonBag) Children() []Expr           { return []Expr{e.Elem} }
func (e *SingletonBag) WithChildren(k []Expr) Expr { return &SingletonBag{Elem: k[0]} }
func (e *SingletonBag) Binders() [][]string        { return [][]string{nil} }

// BagUnion
func (e *BagUnion) Children() []Expr           { return []Expr{e.L, e.R} }
func (e *BagUnion) WithChildren(k []Expr) Expr { return &BagUnion{L: k[0], R: k[1]} }
func (e *BagUnion) Binders() [][]string        { return [][]string{nil, nil} }

// BigBagUnion
func (e *BigBagUnion) Children() []Expr { return []Expr{e.Head, e.Over} }
func (e *BigBagUnion) WithChildren(k []Expr) Expr {
	return &BigBagUnion{Head: k[0], Var: e.Var, Over: k[1]}
}
func (e *BigBagUnion) Binders() [][]string { return [][]string{{e.Var}, nil} }

// RankUnion
func (e *RankUnion) Children() []Expr { return []Expr{e.Head, e.Over} }
func (e *RankUnion) WithChildren(k []Expr) Expr {
	return &RankUnion{Head: k[0], Var: e.Var, RankVar: e.RankVar, Over: k[1]}
}
func (e *RankUnion) Binders() [][]string { return [][]string{{e.Var, e.RankVar}, nil} }

// RankBagUnion
func (e *RankBagUnion) Children() []Expr { return []Expr{e.Head, e.Over} }
func (e *RankBagUnion) WithChildren(k []Expr) Expr {
	return &RankBagUnion{Head: k[0], Var: e.Var, RankVar: e.RankVar, Over: k[1]}
}
func (e *RankBagUnion) Binders() [][]string { return [][]string{{e.Var, e.RankVar}, nil} }

// sanity check: all nodes implement Expr.
var (
	_ Expr = (*Var)(nil)
	_ Expr = (*Param)(nil)
	_ Expr = (*Lam)(nil)
	_ Expr = (*App)(nil)
	_ Expr = (*Tuple)(nil)
	_ Expr = (*Proj)(nil)
	_ Expr = (*EmptySet)(nil)
	_ Expr = (*Singleton)(nil)
	_ Expr = (*Union)(nil)
	_ Expr = (*BigUnion)(nil)
	_ Expr = (*Get)(nil)
	_ Expr = (*BoolLit)(nil)
	_ Expr = (*If)(nil)
	_ Expr = (*Cmp)(nil)
	_ Expr = (*NatLit)(nil)
	_ Expr = (*RealLit)(nil)
	_ Expr = (*StringLit)(nil)
	_ Expr = (*Arith)(nil)
	_ Expr = (*Gen)(nil)
	_ Expr = (*Sum)(nil)
	_ Expr = (*ArrayTab)(nil)
	_ Expr = (*Subscript)(nil)
	_ Expr = (*Dim)(nil)
	_ Expr = (*Index)(nil)
	_ Expr = (*MkArray)(nil)
	_ Expr = (*Bottom)(nil)
	_ Expr = (*EmptyBag)(nil)
	_ Expr = (*SingletonBag)(nil)
	_ Expr = (*BagUnion)(nil)
	_ Expr = (*BigBagUnion)(nil)
	_ Expr = (*RankUnion)(nil)
	_ Expr = (*RankBagUnion)(nil)
)

// Must be kept in sync with the node list above; used by tests to ensure
// traversal coverage.
func AllNodeNames() []string {
	return []string{
		"Var", "Param", "Lam", "App", "Tuple", "Proj", "EmptySet", "Singleton", "Union",
		"BigUnion", "Get", "BoolLit", "If", "Cmp", "NatLit", "RealLit",
		"StringLit", "Arith", "Gen", "Sum", "ArrayTab", "Subscript", "Dim",
		"Index", "MkArray", "Bottom", "EmptyBag", "SingletonBag", "BagUnion",
		"BigBagUnion", "RankUnion", "RankBagUnion",
	}
}

// NodeName returns the constructor name of e, for diagnostics and rule
// indexing.
func NodeName(e Expr) string {
	switch e.(type) {
	case *Var:
		return "Var"
	case *Param:
		return "Param"
	case *Lam:
		return "Lam"
	case *App:
		return "App"
	case *Tuple:
		return "Tuple"
	case *Proj:
		return "Proj"
	case *EmptySet:
		return "EmptySet"
	case *Singleton:
		return "Singleton"
	case *Union:
		return "Union"
	case *BigUnion:
		return "BigUnion"
	case *Get:
		return "Get"
	case *BoolLit:
		return "BoolLit"
	case *If:
		return "If"
	case *Cmp:
		return "Cmp"
	case *NatLit:
		return "NatLit"
	case *RealLit:
		return "RealLit"
	case *StringLit:
		return "StringLit"
	case *Arith:
		return "Arith"
	case *Gen:
		return "Gen"
	case *Sum:
		return "Sum"
	case *ArrayTab:
		return "ArrayTab"
	case *Subscript:
		return "Subscript"
	case *Dim:
		return "Dim"
	case *Index:
		return "Index"
	case *MkArray:
		return "MkArray"
	case *Bottom:
		return "Bottom"
	case *EmptyBag:
		return "EmptyBag"
	case *SingletonBag:
		return "SingletonBag"
	case *BagUnion:
		return "BagUnion"
	case *BigBagUnion:
		return "BigBagUnion"
	case *RankUnion:
		return "RankUnion"
	case *RankBagUnion:
		return "RankBagUnion"
	}
	return fmt.Sprintf("%T", e)
}
