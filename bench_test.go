// Benchmarks regenerating every measurable claim of the paper, one bench
// per experiment of DESIGN.md's index (E4, E6-E11, E15). Absolute numbers
// depend on the machine; the shapes — who wins, by what factor, where the
// asymptotics separate — are the reproduction targets recorded in
// EXPERIMENTS.md.
package aql

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"time"

	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/opt"
	"github.com/aqldb/aql/internal/repl"
)

// evalLoop compiles src once (optionally optimizing) and times evaluation.
func evalLoop(b *testing.B, s *repl.Session, src string, optimize bool) {
	b.Helper()
	core, _, err := s.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	if optimize {
		core = s.Env.Optimizer.Optimize(core)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Eval(core); err != nil {
			b.Fatal(err)
		}
	}
}

// evalASTLoop times evaluation of a prebuilt core expression.
func evalASTLoop(b *testing.B, s *repl.Session, core ast.Expr, optimize bool) {
	b.Helper()
	if optimize {
		core = s.Env.Optimizer.Optimize(core)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Eval(core); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: the motivating query -------------------------------------------------

func BenchmarkE4MotivatingQuery(b *testing.B) {
	s := bench.MustSession()
	bench.SetupWeather(s)
	evalLoop(b, s, bench.MotivatingQuery, true)
}

// --- E6: zip is linear with arrays, quadratic as a set join ---------------------

func BenchmarkE6ZipArray(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := bench.MustSession()
			bench.SetupZip(s, n)
			evalLoop(b, s, bench.ZipArrayQuery, true)
		})
	}
}

func BenchmarkE6ZipViaSets(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := bench.MustSession()
			bench.SetupZip(s, n)
			evalLoop(b, s, bench.ZipSetsQuery, true)
		})
	}
}

// --- E7: hist is O(n·m); hist' via index is O(m + n log n) ----------------------

func BenchmarkE7Hist(b *testing.B) {
	for _, sz := range []struct{ n, m int }{{100, 100}, {100, 400}, {400, 400}} {
		b.Run(fmt.Sprintf("n=%d/m=%d", sz.n, sz.m), func(b *testing.B) {
			s := bench.MustSession()
			if _, err := s.Exec(bench.HistMacros); err != nil {
				b.Fatal(err)
			}
			bench.SetupHist(s, sz.n, sz.m)
			evalLoop(b, s, "hist!A", true)
		})
	}
}

func BenchmarkE7HistIndex(b *testing.B) {
	for _, sz := range []struct{ n, m int }{{100, 100}, {100, 400}, {400, 400}} {
		b.Run(fmt.Sprintf("n=%d/m=%d", sz.n, sz.m), func(b *testing.B) {
			s := bench.MustSession()
			if _, err := s.Exec(bench.HistMacros); err != nil {
				b.Fatal(err)
			}
			bench.SetupHist(s, sz.n, sz.m)
			evalLoop(b, s, "hist'!A", true)
		})
	}
}

// --- E8: literal arrays: monoid append vs row-major construct -------------------

func BenchmarkE8AppendLiteral(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := bench.MustSession()
			// Evaluate un-normalized: the claim is about the literal's
			// construction cost, which clever fusion would mask.
			evalASTLoop(b, s, bench.AppendChainExpr(n), false)
		})
	}
}

func BenchmarkE8RowMajorLiteral(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := bench.MustSession()
			evalASTLoop(b, s, bench.RowMajorExpr(n), false)
		})
	}
}

// --- E9: β^p, η^p, δ^p avoid materialization ------------------------------------

func BenchmarkE9BetaP(b *testing.B) {
	const n = 100000
	for _, opt := range []bool{false, true} {
		b.Run(fmt.Sprintf("optimized=%v", opt), func(b *testing.B) {
			s := bench.MustSession()
			evalASTLoop(b, s, bench.BetaPExpr(n), opt)
		})
	}
}

func BenchmarkE9EtaP(b *testing.B) {
	const n = 100000
	for _, opt := range []bool{false, true} {
		b.Run(fmt.Sprintf("optimized=%v", opt), func(b *testing.B) {
			s := bench.MustSession()
			bench.SetupVector(s, n)
			evalASTLoop(b, s, bench.EtaPExpr(), opt)
		})
	}
}

func BenchmarkE9DeltaP(b *testing.B) {
	const n = 100000
	for _, opt := range []bool{false, true} {
		b.Run(fmt.Sprintf("optimized=%v", opt), func(b *testing.B) {
			s := bench.MustSession()
			evalASTLoop(b, s, bench.DeltaPExpr(n), opt)
		})
	}
}

// --- E10: fused transpose ----------------------------------------------------------

func BenchmarkE10Transpose(b *testing.B) {
	for _, opt := range []bool{false, true} {
		b.Run(fmt.Sprintf("optimized=%v", opt), func(b *testing.B) {
			s := bench.MustSession()
			bench.SetupTranspose(s, 300, 300)
			evalLoop(b, s, bench.TransposeQuery, opt)
		})
	}
}

// --- E11: the two zip/subseq orders cost the same after normalization ----------------

func BenchmarkE11ZipSubseq(b *testing.B) {
	const n = 4000
	for _, tc := range []struct{ name, query string }{
		{"zip_then_subseq", bench.ZipThenSubseqQuery},
		{"subseq_then_zip", bench.SubseqThenZipQuery},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := bench.MustSession()
			bench.SetupZipSubseq(s, n)
			evalLoop(b, s, tc.query, true)
		})
	}
}

// --- E19: execution engines -----------------------------------------------------------

// BenchmarkE19TabulateEngines times the tabulation-heavy workloads under
// the tree-walking interpreter and the compiled engine. The acceptance
// target for the compiled engine is >=2x on the pure-tabulation workload;
// CI's bench-smoke job fails if compiled is ever slower than interp here.
func BenchmarkE19TabulateEngines(b *testing.B) {
	workloads := []struct{ name, query string }{
		{"puretab", bench.PureTabQuery},
		{"matmul", bench.MatmulQuery},
	}
	for _, w := range workloads {
		for _, eng := range []string{repl.EngineInterp, repl.EngineCompiled} {
			b.Run(fmt.Sprintf("%s/engine=%s", w.name, eng), func(b *testing.B) {
				s := bench.MustSession()
				if err := s.SetEngine(eng); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Exec(bench.EngineSetup); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Exec(w.query); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E15: NetCDF subslab reads --------------------------------------------------------

func BenchmarkE15NetCDFSubslab(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.nc")
	nb := netcdf.NewBuilder()
	ti, _ := nb.AddDim("time", 2000)
	la, _ := nb.AddDim("lat", 10)
	lo, _ := nb.AddDim("lon", 10)
	data := make([]float64, 2000*10*10)
	for i := range data {
		data[i] = float64(i % 97)
	}
	if err := nb.AddVar("temp", netcdf.Double, []int{ti, la, lo}, nil, data); err != nil {
		b.Fatal(err)
	}
	if err := nb.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	f, err := netcdf.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slab, err := f.ReadSlab("temp", []int{i % 1000, 0, 0}, []int{720, 10, 10})
		if err != nil {
			b.Fatal(err)
		}
		if slab.Size() != 72000 {
			b.Fatal("bad slab")
		}
	}
	b.SetBytes(72000 * 8)
}

// --- Pipeline overhead: the optimizer itself -------------------------------------------

func BenchmarkOptimizerOnMotivatingQuery(b *testing.B) {
	s := bench.MustSession()
	bench.SetupWeather(s)
	core, _, err := s.Compile(bench.MotivatingQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Env.Optimizer.Optimize(core)
	}
}

// --- End-to-end sanity: the suite runs under `go test` ---------------------------------

// TestBenchWorkloadsAgree cross-checks that the rival implementations in
// each experiment compute the same result, so the benchmarks compare equal
// work.
func TestBenchWorkloadsAgree(t *testing.T) {
	// E6: array zip vs set join agree through the graph encoding.
	s := bench.MustSession()
	bench.SetupZip(s, 64)
	za, _, err := s.Query(bench.ZipArrayQuery)
	if err != nil {
		t.Fatal(err)
	}
	zs, _, err := s.Query(bench.ZipSetsQuery)
	if err != nil {
		t.Fatal(err)
	}
	zaGraph, err := object.Graph(za)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(zaGraph, zs) {
		t.Fatalf("zip mismatch: %s vs %s", zaGraph, zs)
	}

	// E7: the two histograms agree.
	s2 := bench.MustSession()
	if _, err := s2.Exec(bench.HistMacros); err != nil {
		t.Fatal(err)
	}
	bench.SetupHist(s2, 64, 50)
	h1, _, err := s2.Query("hist!A")
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := s2.Query("hist'!A")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(h1, h2) {
		t.Fatalf("histograms disagree: %s vs %s", h1, h2)
	}

	// E8: both literal constructions denote the same array.
	s3 := bench.MustSession()
	a1, err := s3.Eval(bench.AppendChainExpr(32))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s3.Eval(bench.RowMajorExpr(32))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a1, a2) {
		t.Fatalf("literals disagree: %s vs %s", a1, a2)
	}

	// E11: both orders give the same slab.
	s4 := bench.MustSession()
	bench.SetupZipSubseq(s4, 128)
	v1, _, err := s4.Query(bench.ZipThenSubseqQuery)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := s4.Query(bench.SubseqThenZipQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v1, v2) {
		t.Fatalf("zip/subseq orders disagree")
	}

	// E9/E10: optimized and unoptimized agree.
	s5 := bench.MustSession()
	bench.SetupTranspose(s5, 12, 9)
	core, _, err := s5.Compile(bench.TransposeQuery)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := s5.Eval(core)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s5.Eval(s5.Env.Optimizer.Optimize(core))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(naive, opt) {
		t.Fatal("transpose optimization changed the result")
	}
}

// --- E17: predictive caching for external arrays (section 7 future work) ----------

func BenchmarkE17CachedNetCDF(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "cache.nc")
	nb := netcdf.NewBuilder()
	ti, _ := nb.AddDim("time", 4000)
	la, _ := nb.AddDim("lat", 50)
	data := make([]float64, 4000*50)
	for i := range data {
		data[i] = float64(i % 89)
	}
	if err := nb.AddVar("temp", netcdf.Double, []int{ti, la}, nil, data); err != nil {
		b.Fatal(err)
	}
	if err := nb.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	// A maximally strided read: one column across all rows.
	colRead := func(b *testing.B, f *netcdf.File) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			slab, err := f.ReadSlab("temp", []int{0, i % 50}, []int{4000, 1})
			if err != nil {
				b.Fatal(err)
			}
			if slab.Size() != 4000 {
				b.Fatal("bad slab")
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		f, err := netcdf.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		b.ResetTimer()
		colRead(b, f)
	})
	b.Run("cached", func(b *testing.B) {
		f, err := netcdf.OpenCached(path, 1<<16, 64)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		b.ResetTimer()
		colRead(b, f)
	})
}

// --- Ablation: what each optimizer phase buys ---------------------------------------

// BenchmarkAblationPhases evaluates the motivating query with no optimizer,
// the normalization phase only, and the full three-phase pipeline —
// quantifying DESIGN.md's phase-structure choice.
func BenchmarkAblationPhases(b *testing.B) {
	variants := []struct {
		name string
		mk   func() *opt.Optimizer
	}{
		{"none", nil},
		{"normalize-only", opt.NewNormalizeOnly},
		{"full", opt.New},
	}
	for _, variant := range variants {
		b.Run(variant.name, func(b *testing.B) {
			s := bench.MustSession()
			bench.SetupWeather(s)
			core, _, err := s.Compile(bench.MotivatingQuery)
			if err != nil {
				b.Fatal(err)
			}
			if variant.mk != nil {
				core = variant.mk().Optimize(core)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Eval(core); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBetaGuard shows why β is guarded against work
// duplication: a hoisted expensive binding used inside a loop must stay
// hoisted. "guarded" is the shipping optimizer; "unguarded" simulates full
// β by substituting the binding through.
func BenchmarkAblationBetaGuard(b *testing.B) {
	mkQuery := func() ast.Expr {
		// (λh. [[ count(h[i]) | i < len h ]])(index_1(...1000 pairs...))
		pairs := &ast.BigUnion{
			Head: &ast.Singleton{Elem: &ast.Tuple{Elems: []ast.Expr{
				&ast.Arith{Op: ast.OpMod, L: &ast.Var{Name: "j"}, R: &ast.NatLit{Val: 50}},
				&ast.Var{Name: "j"}}}},
			Var:  "j",
			Over: &ast.Gen{N: &ast.NatLit{Val: 1000}},
		}
		body := &ast.ArrayTab{
			Head: &ast.App{Fn: &ast.Var{Name: "count"},
				Arg: &ast.Subscript{Arr: &ast.Var{Name: "h"}, Index: &ast.Var{Name: "i"}}},
			Idx:    []string{"i"},
			Bounds: []ast.Expr{&ast.Dim{K: 1, Arr: &ast.Var{Name: "h"}}},
		}
		return &ast.App{
			Fn:  &ast.Lam{Param: "h", Body: body},
			Arg: &ast.Index{K: 1, Set: pairs},
		}
	}
	b.Run("guarded", func(b *testing.B) {
		s := bench.MustSession()
		core := s.Env.Optimizer.Optimize(mkQuery())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Eval(core); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unguarded", func(b *testing.B) {
		s := bench.MustSession()
		q := mkQuery().(*ast.App)
		inlined := ast.Subst(q.Fn.(*ast.Lam).Body, "h", q.Arg)
		core := s.Env.Optimizer.Optimize(inlined)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Eval(core); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGuardrailOverhead measures the cost of the execution guardrails
// (amortized cancellation checks, step/cell accounting) against the same
// query run with no limits and no context. The target is <5% on the
// guarded path: the hot loop pays two integer compares per node plus one
// ctx.Err() every 256 steps.
func BenchmarkGuardrailOverhead(b *testing.B) {
	const src = `summap(fn \i => i*i)!(gen!10000)`
	b.Run("baseline", func(b *testing.B) {
		s := bench.MustSession()
		core, _, err := s.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		core = s.Env.Optimizer.Optimize(core)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Eval(core); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("guardrails", func(b *testing.B) {
		s := bench.MustSession()
		s.Limits = eval.Limits{
			MaxSteps: 1 << 40,
			MaxCells: 1 << 40,
			MaxDepth: 1 << 20,
			Timeout:  time.Hour,
		}
		core, _, err := s.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		core = s.Env.Optimizer.Optimize(core)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.EvalCtx(ctx, core); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraceOverhead measures the cost of the observability layer on
// the evaluator's hot path. The disabled case must stay within ~3% of
// baseline: the evaluator only increments plain int64 fields (exactly as
// it already did for steps/cells), and the recorder is consulted a
// constant number of times per query, never per step. The enabled case
// additionally pays Begin/End, six phase spans and one counter fold per
// query.
func BenchmarkTraceOverhead(b *testing.B) {
	const src = `summap(fn \i => i*i)!(gen!10000)`
	run := func(b *testing.B, s *repl.Session) {
		core, _, err := s.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		core = s.Env.Optimizer.Optimize(core)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Eval(core); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) {
		s := bench.MustSession()
		s.Trace = nil // no recorder at all: pure nil-check hooks
		run(b, s)
	})
	b.Run("disabled", func(b *testing.B) {
		s := bench.MustSession()
		s.Trace.SetEnabled(false)
		run(b, s)
	})
	b.Run("enabled", func(b *testing.B) {
		s := bench.MustSession()
		run(b, s)
	})
	b.Run("enabled-report", func(b *testing.B) {
		s := bench.MustSession()
		core, _, err := s.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		core = s.Env.Optimizer.Optimize(core)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Trace.Begin(src)
			_, err := s.Eval(core)
			s.Trace.End(err)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
