// The climatology example is the capstone workload: a year of daily
// gridded temperatures in a NetCDF file, read through the predictive block
// cache (section 7 future work #1), indexed by physical latitude
// coordinates (future work #2), and reduced with AQL group-by queries —
// monthly means via the index construct's implicit grouping (section 2).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"github.com/aqldb/aql"
	"github.com/aqldb/aql/internal/coord"
	"github.com/aqldb/aql/internal/netcdf"
)

const days = 365

var latValues = []float64{-60, -45, -30, -15, 0, 15, 30, 45, 60}

func main() {
	dir, err := os.MkdirTemp("", "aql-climatology")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "climate.nc")
	writeClimate(path)
	fmt.Printf("wrote %d days x %d latitudes of daily means to %s\n\n", days, len(latValues), path)

	// Open through the block cache; the latitude axis comes from the
	// file's own coordinate variable (the NetCDF convention).
	f, err := netcdf.OpenCached(path, 1<<15, 32)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	axis, err := coord.FromNetCDF(f, "lat")
	if err != nil {
		log.Fatal(err)
	}

	s, err := aql.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	if err := s.RegisterAxis("lat", axis.Values); err != nil {
		log.Fatal(err)
	}

	// Load the whole grid (shaped [days][lats]).
	load := fmt.Sprintf(`readval \T using NETCDF2 at (%q, "temp", (0, 0), (%d, %d));`,
		path, days-1, len(latValues)-1)
	if _, err := s.Exec(load); err != nil {
		log.Fatal(err)
	}

	// Month arithmetic and an averaging macro, in AQL.
	prelude := `
	  val \mdays = [[31,28,31,30,31,30,31,31,30,31,30,31]];
	  macro \month_of = fn \d =>
	    count!{m | \m <- gen!12, summap(fn \i => mdays[i])!(gen!(m+1)) <= d};
	  macro \avg = fn \S => summap(fn \x => x)!S / real!(count!S);
	`
	if _, err := s.Exec(prelude); err != nil {
		log.Fatal(err)
	}

	// Monthly means at NYC's latitude via the index construct: group day
	// temperatures by month, then average each group — the hist' pattern
	// of section 2 applied to climatology.
	fmt.Println("monthly mean temperature at latitude 40.7N (via index group-by):")
	v, _, err := s.Query(`
	  let val \ny = lat_index!40.7
	      val \byMonth = index_1!{p | \d <- gen!365, \p == (month_of!d, T[d, ny])}
	  in [[ avg!(byMonth[m]) | \m < len!byMonth ]] end`)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	for m, x := range v.Data {
		fmt.Printf("  %s %6.1f°F\n", names[m], x.R)
	}

	// The annual north-south profile.
	fmt.Println("\nannual mean by latitude band:")
	v2, _, err := s.Query(`[[ avg!{t | [(_, l) : \t] <- T} | \l < dim_2_2!T ]]`)
	if err != nil {
		log.Fatal(err)
	}
	for i, x := range v2.Data {
		c, _ := axis.Coord(i)
		fmt.Printf("  lat %+5.0f° %6.1f°F\n", c, x.R)
	}

	// A coordinate-bounded tropical mean: physical degrees in, indices out.
	v3, _, err := s.Query(`
	  let val (\lo, \hi) = lat_range!(-20.0, 20.0)
	  in avg!{t | [(_, \l) : \t] <- T, l >= lo, l <= hi} end`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntropical (±20°) annual mean: %.1f°F\n", v3.R)

	fmt.Printf("\ncache stats after the workload: %+v\n", f.Cache.Stats)
	total := f.Cache.Stats.Hits + f.Cache.Stats.Misses
	if total > 0 {
		fmt.Printf("(%.1f%% of block accesses served from the cache)\n",
			float64(f.Cache.Stats.Hits)/float64(total)*100)
	}
}

// writeClimate synthesizes a year of daily mean temperatures over a
// latitude transect: warm equator, cool poles, opposite seasons per
// hemisphere.
func writeClimate(path string) {
	b := netcdf.NewBuilder()
	ti, err := b.AddDim("time", days)
	if err != nil {
		log.Fatal(err)
	}
	la, _ := b.AddDim("lat", len(latValues))
	if err := b.AddVar("lat", netcdf.Double, []int{la}, nil, latValues); err != nil {
		log.Fatal(err)
	}
	data := make([]float64, days*len(latValues))
	for d := 0; d < days; d++ {
		season := math.Cos(2 * math.Pi * float64(d-15) / 365) // northern winter near Jan 15
		for li, lat := range latValues {
			base := 80 - 0.6*math.Abs(lat)        // warm equator, cool poles
			seasonal := -18 * season * (lat / 90) // hemispheres oppose
			data[d*len(latValues)+li] = base + seasonal
		}
	}
	if err := b.AddVar("temp", netcdf.Double, []int{ti, la}, nil, data); err != nil {
		log.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		log.Fatal(err)
	}
}
