// The expressiveness example walks through section 6 of the paper: what do
// arrays add to a complex-object query language?
//
//  1. The object translation (·)° encodes arrays as their graphs — sets of
//     (index, value) pairs — and Theorem 6.1 says NRC^aggr(gen) over the
//     encodings matches NRCA over the arrays.
//  2. Theorem 6.2 recasts the gain as *ranking*: the ⋃_r construct (and
//     the rank operator derived from it) recovers array order from sets.
//  3. The same queries compile into the variable-free algebra of functions
//     that the paper's equivalence proof uses.
package main

import (
	"fmt"
	"log"

	"github.com/aqldb/aql"
	"github.com/aqldb/aql/internal/algebra"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/rank"
)

func main() {
	s, err := aql.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	A := object.NatVector(50, 20, 90, 20)
	if err := s.SetVal("A", A); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- 1. arrays as graphs (the translation of Theorem 6.1) --------")
	G, err := rank.TranslateValue(A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A  = %s\n", A)
	fmt.Printf("A° = %s   (a plain set: no array constructs left)\n\n", G)
	if err := s.SetVal("G", G); err != nil {
		log.Fatal(err)
	}

	show := func(src string) aql.Value {
		v, typ, err := s.Query(src)
		if err != nil {
			log.Fatalf("%s\n  error: %v", src, err)
		}
		fmt.Printf(": %s;\ntyp it : %s\nval it = %s\n\n", src, typ, v)
		return v
	}

	fmt.Println("-- the same query, with and without arrays ----------------------")
	native := show(`len!A`)
	encoded := show(`count!G`)
	if !aql.Equal(native, encoded) {
		log.Fatal("Theorem 6.1 failed?!")
	}

	fmt.Println("-- 2. ranking recovers order (Theorem 6.2) ----------------------")
	show(`rank!{30, 10, 20}`)
	show(`sort!(rng!A)`)
	fmt.Println("(sort is a macro built on rank and index — ranking is exactly")
	fmt.Println(" the power arrays add, so sorting costs one group-by)")
	fmt.Println()

	fmt.Println("-- 3. the algebra of functions ----------------------------------")
	// Compile `{ x * x | \x <- gen!n }` to the variable-free algebra.
	if err := s.SetVal("n", aql.Nat(5)); err != nil {
		log.Fatal(err)
	}
	core, _, err := s.Compile(`{x * x | \x <- gen!n}`)
	if err != nil {
		log.Fatal(err)
	}
	term, err := algebra.Translate(core, []string{"n"}, eval.Builtins())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calculus: %s\n", core)
	fmt.Printf("algebra:  %s\n", term)
	out, err := term.Apply(algebra.EnvValue(object.Nat(5)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied to n = 5: %s\n\n", out)

	// Fragment checking: where does each query live?
	fmt.Println("-- fragment membership ------------------------------------------")
	for _, q := range []string{`count!G`, `len!A`} {
		core, _, err := s.Compile(q)
		if err != nil {
			log.Fatal(err)
		}
		errCheck := rank.Check(core, rank.NRCAggrGen)
		status := "inside NRC^aggr(gen)"
		if errCheck != nil {
			status = errCheck.Error()
		}
		fmt.Printf("%-12s -> %s\n", q, status)
	}
}
