// The sunset example replays the complete interactive session of
// section 4.2 of the paper:
//
//	What days last June was it hotter than 85° after sunset in NYC?
//
// It performs the same steps as the paper's transcript: register the
// june_sunset external function at the host level (the paper's RegisterCO),
// define the days_since_1_1 macro in AQL, read the June subslab of a
// year-long hourly temperature file through the NETCDF3 reader, and run the
// final query. The synthetic temperature file plants post-sunset heat on
// June 25, 27 and 28, so the session ends exactly like the paper's:
//
//	val it = {25,27,28}
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/aqldb/aql"
	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/prim"
)

func main() {
	dir, err := os.MkdirTemp("", "aql-sunset")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "temp.nc")
	writeYearFile(path, []int{25, 27, 28})
	fmt.Printf("wrote a year of hourly temperatures to %s\n\n", path)

	s, err := aql.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// Host-level registration, as in the paper's SML snippet. The query
	// compares sunset against the hour index within the June array, so the
	// primitive returns month-hours: (d-1)*24 + local sunset hour.
	err = s.RegisterPrimitive("june_sunset", "(real * real * nat) -> nat",
		func(v aql.Value) (aql.Value, error) {
			lat, _ := v.Elems[0].AsReal()
			lon, _ := v.Elems[1].AsReal()
			d, _ := v.Elems[2].AsNat()
			return aql.Nat((d-1)*24 + int64(prim.Sunset(lat, lon, 6, int(d), 1995))), nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("- june_sunset registered as an AQL primitive")

	session := fmt.Sprintf(`
	  val \months = [[0,31,28,31,30,31,30,31,31,30,31,30]];
	  macro \days_since_1_1 = fn (\m,\d,\y) =>
	    d + summap(fn \i => months[i])!(gen!m) +
	    if m > 2 and y %% 4 = 0 then 1 else 0;
	  macro \lat_index = fn _ => 0;
	  macro \lon_index = fn _ => 0;
	  val \NYlat = 40.7;
	  val \NYlon = 74.0;
	  readval \T using NETCDF3 at
	    (%q, "temp",
	     (days_since_1_1!(6,1,95)*24, lat_index!(NYlat), lon_index!(NYlon)),
	     (days_since_1_1!(6,30,95)*24 + 23, lat_index!(NYlat), lon_index!(NYlon)));
	  {d | [(\h,_,_):\t] <- T, \d == h/24+1,
	       h > june_sunset!(NYlat, NYlon, d), t > 85.0};
	`, path)

	results, err := s.Exec(session)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		switch r.Kind {
		case "macro":
			fmt.Printf("typ %s : %s\nval %s registered as macro.\n", r.Name, r.Type, r.Name)
		default:
			fmt.Printf("typ %s : %s\n", r.Name, r.Type)
			if r.HasValue {
				fmt.Printf("val %s = %s\n", r.Name, r.Value.Pretty(6))
			}
		}
	}

	final := results[len(results)-1].Value
	want := aql.SetOf(aql.Nat(25), aql.Nat(27), aql.Nat(28))
	if aql.Equal(final, want) {
		fmt.Println("\nreproduces the paper's `val it = {25,27,28}` — session OK")
	} else {
		fmt.Printf("\nMISMATCH: wanted %s\n", want)
		os.Exit(1)
	}
}

// writeYearFile writes a year's hourly temperatures over a 1x1 grid with
// post-sunset heat on the given June days (aligned with days_since_1_1,
// which maps June 1 1995 to day 152).
func writeYearFile(path string, hotJuneDays []int) {
	hot := map[int]bool{}
	for _, d := range hotJuneDays {
		hot[d] = true
	}
	const hoursPerYear = 365 * 24
	juneStart := 152 * 24
	data := make([]float64, hoursPerYear)
	for h := range data {
		data[h] = 60
		if h >= juneStart && h < juneStart+30*24 {
			juneHour := h - juneStart
			d := juneHour/24 + 1
			hourOfDay := juneHour % 24
			switch {
			case hot[d] && hourOfDay >= 21:
				data[h] = 88
			case hourOfDay >= 12 && hourOfDay <= 16:
				data[h] = 84
			default:
				data[h] = 72
			}
		}
	}
	b := netcdf.NewBuilder()
	ti, err := b.AddDim("time", hoursPerYear)
	if err != nil {
		log.Fatal(err)
	}
	la, _ := b.AddDim("lat", 1)
	lo, _ := b.AddDim("lon", 1)
	if err := b.AddVar("temp", netcdf.Double, []int{ti, la, lo}, nil, data); err != nil {
		log.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		log.Fatal(err)
	}
}
