// The weather example reproduces the motivating query of section 1 of the
// paper end to end:
//
//	On which days last June was it unbearably hot in NYC?
//
// It synthesizes a June of NYC weather (see internal/weather for the
// substitution notes), writes it as genuine NetCDF classic files, loads the
// three variables through the NETCDF readers — T and RH hourly and
// one-dimensional, WS half-hourly and two-dimensional over altitudes — and
// runs the paper's query verbatim:
//
//	{d | \d <- gen!30,
//	     \WS' == evenpos!(proj_col!(WS, 0)),   (* adjust WS grid and dim *)
//	     \TRW == zip_3!(T, RH, WS'),           (* combine the readings *)
//	     \A == subseq!(TRW, d*24, d*24+23),    (* extract day d readings *)
//	     heatindex!(A) > threshold};           (* filter for unbearability *)
//
// heatindex is the externally registered NWS heat-index algorithm
// (internal/prim); the threshold 105 °F is the NWS "danger" category.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/aqldb/aql"
	"github.com/aqldb/aql/internal/weather"
)

func main() {
	dir, err := os.MkdirTemp("", "aql-weather")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Synthesize the month and write real .nc files.
	cfg := weather.DefaultConfig()
	month := weather.Generate(cfg)
	tPath, rhPath, wsPath, err := month.WriteNetCDF(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized June weather -> %s, %s, %s\n", tPath, rhPath, wsPath)
	fmt.Printf("planted heat-wave days (0-based): %v\n\n", cfg.HotDays)

	s, err := aql.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// Load the three variables through the NetCDF drivers, exactly as the
	// paper's readval does.
	load := fmt.Sprintf(`
	  readval \T  using NETCDF1 at (%q, "temp", 0, %d);
	  readval \RH using NETCDF1 at (%q, "rh",   0, %d);
	  readval \WS using NETCDF2 at (%q, "wind", (0, 0), (%d, %d));
	  val \threshold = 105.0;
	`, tPath, cfg.Days*24-1, rhPath, cfg.Days*24-1,
		wsPath, cfg.Days*48-1, cfg.Altitudes-1)
	if _, err := s.Exec(load); err != nil {
		log.Fatal(err)
	}

	// The motivating query, verbatim.
	query := `{d | \d <- gen!30,
	            \WS' == evenpos!(proj_col!(WS, 0)),
	            \TRW == zip_3!(T, RH, WS'),
	            \A == subseq!(TRW, d*24, d*24+23),
	            heatindex!(A) > threshold}`
	v, typ, err := s.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("typ it : %s\n", typ)
	fmt.Printf("val it = %s\n", v)
	fmt.Printf("(evaluator steps: %d)\n\n", s.LastSteps())

	// Cross-check against the planted configuration.
	want := aql.SetOf(aql.Nat(11), aql.Nat(17), aql.Nat(18))
	if aql.Equal(v, want) {
		fmt.Println("matches the planted heat-wave days — reproduction OK")
	} else {
		fmt.Printf("MISMATCH: wanted %s\n", want)
		os.Exit(1)
	}

	// A bonus query in the same session: how hot did each bad day get?
	v2, _, err := s.Query(`{(d, max!(rng!(subseq!(T, d*24, d*24+23)))) | \d <- it}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeak temperatures on those days: %s\n", v2)
}
