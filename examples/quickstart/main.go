// The quickstart example tours the public API: queries, comprehensions,
// patterns, arrays-as-functions, macros, registered primitives, and the
// optimizer.
package main

import (
	"fmt"
	"log"

	"github.com/aqldb/aql"
)

func main() {
	s, err := aql.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	show := func(src string) {
		v, typ, err := s.Query(src)
		if err != nil {
			log.Fatalf("%s\n  error: %v", src, err)
		}
		fmt.Printf(": %s;\ntyp it : %s\nval it = %s\n\n", src, typ, v.Pretty(16))
	}

	fmt.Println("-- sets and comprehensions ------------------------------------")
	show(`{d | \d <- gen!30, d % 7 = 0}`)
	show(`{(x, y) | \x <- gen!3, \y <- gen!3, x < y}`)

	fmt.Println("-- arrays are functions: tabulate, subscript, dim -------------")
	show(`[[ i * i | \i < 8 ]]`)
	show(`[[ i * i | \i < 8 ]][5]`)
	show(`len![[ i * i | \i < 8 ]]`)
	show(`[[ i * 10 + j | \i < 2, \j < 3 ]]`)

	fmt.Println("-- the standard macros of section 3 ---------------------------")
	show(`reverse![[1, 2, 3, 4, 5]]`)
	show(`zip!([[1, 2, 3]], [["a", "b", "c"]])`)
	show(`transpose![[2, 3; 1, 2, 3, 4, 5, 6]]`)
	show(`subseq!([[10, 20, 30, 40, 50]], 1, 3)`)

	fmt.Println("-- patterns and array generators ------------------------------")
	show(`{i | [\i : \x] <- [[5, 99, 3, 98]], x > 90}`)
	show(`{x | (_, 0, \x) <- {(1, 0, "keep"), (2, 5, "drop")}}`)

	fmt.Println("-- index: group-by into an array (section 2's example) --------")
	show(`index_1!{(1, "a"), (3, "b"), (1, "c")}`)

	fmt.Println("-- user macros and vals ---------------------------------------")
	if _, err := s.Exec(`
	  val \V = [[3.0, 1.0, 4.0, 1.0, 5.0]];
	  macro \mean = fn \A => summap(fn \i => A[i])!(dom!A) / real!(len!A);
	`); err != nil {
		log.Fatal(err)
	}
	show(`mean!V`)

	fmt.Println("-- registering a Go function as a primitive -------------------")
	err = s.RegisterPrimitive("fib", "nat -> nat", func(v aql.Value) (aql.Value, error) {
		a, b := int64(0), int64(1)
		for i := int64(0); i < v.N; i++ {
			a, b = b, a+b
		}
		return aql.Nat(a), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	show(`[[ fib!i | \i < 10 ]]`)

	fmt.Println("-- the optimizer at work --------------------------------------")
	src := `[[ i * i | \i < 100000 ]][7]`
	s.SetOptimizerEnabled(false)
	if _, _, err := s.Query(src); err != nil {
		log.Fatal(err)
	}
	naive := s.LastSteps()
	s.SetOptimizerEnabled(true)
	if _, _, err := s.Query(src); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscripting a 100k tabulation: %d evaluator steps unoptimized,\n", naive)
	fmt.Printf("%d after the β^p rule fuses away the materialization.\n", s.LastSteps())
}
