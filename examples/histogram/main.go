// The histogram example reproduces the complexity comparison of section 2:
// the naive histogram scans the array once per bucket (O(n·m)), while the
// version built on the index construct's implicit group-by runs in
// O(m + n log n). Both are written in AQL; the evaluator's step counter
// gives a machine-independent cost measure.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/aqldb/aql"
)

func main() {
	s, err := aql.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// hist and hist' from section 2, as macros.
	if _, err := s.Exec(`
	  macro \hist = fn \e =>
	    [[ summap(fn \j => if e[j] = i then 1 else 0)!(dom!e)
	       | \i < max!(rng!e) + 1 ]];
	  macro \hist' = fn \e =>
	    let val \g = index_1!{p | [\j : \x] <- e, \p == (x, j)}
	    in [[ count!(g[i]) | \i < len!g ]] end;
	`); err != nil {
		log.Fatal(err)
	}

	// Correctness on a small input first.
	small := `[[2, 0, 2, 3, 2]]`
	v1, _, err := s.Query("hist!" + small)
	if err != nil {
		log.Fatal(err)
	}
	v2, _, err := s.Query("hist'!" + small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hist %s  = %s\n", small, v1)
	fmt.Printf("hist'%s  = %s\n", small, v2)
	if !aql.Equal(v1, v2) {
		log.Fatal("histogram versions disagree")
	}

	fmt.Println("\nevaluator steps as n (array length) and m (value range) grow:")
	fmt.Println("      n      m     hist steps    hist' steps   ratio")
	for _, sz := range []struct{ n, m int }{
		{50, 50}, {50, 200}, {50, 800}, {200, 200}, {200, 800},
	} {
		data := make([]string, sz.n)
		for i := range data {
			val := (i * 7919) % sz.m
			if i == 0 {
				val = sz.m - 1 // pin the range
			}
			data[i] = fmt.Sprintf("%d", val)
		}
		lit := "[[" + strings.Join(data, ",") + "]]"
		if _, err := s.Exec(fmt.Sprintf("val \\A = %s;", lit)); err != nil {
			log.Fatal(err)
		}
		a, _, err := s.Query("hist!A")
		if err != nil {
			log.Fatal(err)
		}
		slow := s.LastSteps()
		b, _, err := s.Query("hist'!A")
		if err != nil {
			log.Fatal(err)
		}
		fast := s.LastSteps()
		if !aql.Equal(a, b) {
			log.Fatalf("disagreement at n=%d m=%d", sz.n, sz.m)
		}
		fmt.Printf("  %5d  %5d  %12d  %12d   %5.1fx\n", sz.n, sz.m, slow, fast, float64(slow)/float64(fast))
	}
	fmt.Println("\nhist grows with n·m; hist' with m + n log n — the index")
	fmt.Println("construct's implicit group-by does the counting in one pass.")
}
