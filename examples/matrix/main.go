// The matrix example shows linear algebra written in AQL with the
// arrays-as-functions constructs of section 2 — transpose, matrix product,
// identity, trace, matrix-vector application — and demonstrates the
// optimizer deriving the transpose-fusion rule of section 5 from the
// minimal rule set.
package main

import (
	"fmt"
	"log"

	"github.com/aqldb/aql"
)

func main() {
	s, err := aql.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// Matrix operations as AQL macros (multiply is section 2's definition).
	if _, err := s.Exec(`
	  macro \multiply = fn (\M, \N) =>
	    if dim_2_2!M <> dim_1_2!N then _|_ else
	    [[ summap(fn \j => M[i, j] * N[j, k])!(gen!(dim_2_2!M))
	       | \i < dim_1_2!M, \k < dim_2_2!N ]];
	  macro \identity = fn \n => [[ if i = j then 1 else 0 | \i < n, \j < n ]];
	  macro \trace = fn \M => summap(fn \i => M[i, i])!(gen!(dim_1_2!M));
	  macro \matvec = fn (\M, \v) =>
	    [[ summap(fn \j => M[i, j] * v[j])!(gen!(dim_2_2!M)) | \i < dim_1_2!M ]];
	  macro \scale = fn (\c, \M) => [[ c * M[i, j] | \i < dim_1_2!M, \j < dim_2_2!M ]];
	  macro \add = fn (\M, \N) => [[ M[i, j] + N[i, j] | \i < dim_1_2!M, \j < dim_2_2!M ]];
	`); err != nil {
		log.Fatal(err)
	}

	show := func(src string) {
		v, typ, err := s.Query(src)
		if err != nil {
			log.Fatalf("%s\n  error: %v", src, err)
		}
		fmt.Printf(": %s;\ntyp it : %s\nval it = %s\n\n", src, typ, v.Pretty(20))
	}

	fmt.Println("-- matrices as 2-dimensional arrays ----------------------------")
	if _, err := s.Exec(`val \M = [[2, 3; 1, 2, 3, 4, 5, 6]];`); err != nil {
		log.Fatal(err)
	}
	show(`M`)
	show(`transpose!M`)
	show(`multiply!(M, transpose!M)`)
	show(`multiply!(M, identity!3)`)
	show(`trace!(multiply!(M, transpose!M))`)
	show(`matvec!(M, [[1, 0, 1]])`)
	show(`add!(M, scale!(10, M))`)
	// Dimension mismatch is the error value, per section 2's definition.
	show(`multiply!(M, M)`)

	fmt.Println("-- section 5: transpose fusion is derived, not built in --------")
	if _, err := s.Exec(`val \m = 4; val \n = 5; val \A = identity!4;`); err != nil {
		log.Fatal(err)
	}
	e, _, err := s.Compile(`transpose![[ i * 10 + j | \i < m, \j < n ]]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %s\n", e)
	fmt.Printf("after:  %s\n", s.Optimize(e))
	fmt.Println("\n(the tabulation is re-indexed in place: no intermediate array,")
	fmt.Println(" no bound checks — exactly the derivation shown in the paper)")

	fmt.Println("\n-- double transpose collapses to the identity ------------------")
	e2, _, err := s.Compile(`transpose!(transpose!A)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %s\n", e2)
	fmt.Printf("after:  %s\n", s.Optimize(e2))
}
