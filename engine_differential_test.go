// Differential testing of the two execution engines: every query in the
// corpus (and every fuzz input that compiles) must behave byte-identically
// under the reference interpreter and the compiled engine — same value
// rendering, same error text, same resource-error kind, same work counters.
// This is the enforcement mechanism behind DESIGN.md's rule that the
// interpreter is the specification and the compiled engine an optimization.
package aql

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/repl"
)

// diffSetup binds the globals the corpus refers to. It runs under the
// default (compiled) engine; only the resulting bindings matter here.
const diffSetup = `
val A = [[ i * 3 + 1 | \i < 10 ]];
val M = [[ i * 10 + j | \i < 4, \j < 5 ]];
val S = gen!6;
val B = {| 1, 2, 2, 5 |};
val G = {(0, 10), (1, 20), (2, 30)};
val f = fn \x => x * x + 1;
val p = (7, true);
`

// diffCorpus exercises every construct the surface language can reach —
// arithmetic, comparisons, tuples, sets, bags, comprehensions, closures,
// tabulation, subscripting (including the compiled engine's fused 2-D
// path), indexing, ranking, the standard macros — plus the ⊥ producers
// (division by zero, out-of-bounds subscripts, get of a non-singleton,
// aggregate of an empty collection, dimension/element mismatch in array
// literals) whose diagnostics must render identically.
var diffCorpus = []string{
	// Scalars, arithmetic, comparison, conditionals.
	`1 + 2 * 3 - 4`,
	`7 / 2 + 7 % 2`,
	`2 - 5`, // natural subtraction is monus
	`1.5 + 2.25`,
	`"con" = "con"`,
	`if 3 < 4 then 10 else 20`,
	`if false then 1/0 else 99`, // untaken branch may diverge
	// Tuples and projections.
	`((1, 2), 3)`,
	`fst!p`,
	`f!(fst!p)`,
	// Sets, bags, comprehensions.
	`{1, 2, 2, 3}`,
	`{| 1, 2, 2 |}`,
	`{x * 2 | \x <- S}`,
	`{| x | \x <- B, x > 1 |}`,
	`{(x, y) | \x <- gen!3, \y <- gen!3, x < y}`,
	`count!S + count!{x | \x <- gen!4, x > 0}`,
	`min!S + max!S`,
	`member!(3, S)`,
	`summap(fn \x => x * x)!S`,
	`rank!{30, 10, 20}`,
	`sort!{5, 3, 9, 1}`,
	// Arrays: literals, tabulation, subscripting, dims, macros.
	`[[2, 3; 1, 2, 3, 4, 5, 6]]`,
	`[[ i * i | \i < 20 ]]`,
	`[[ A[i] + 1 | \i < len!A ]]`,
	`A[0] + A[9]`,
	`M[2, 3]`,
	`M[1, 4] + M[3, 0]`,
	`len!A + dim_1_2!M * dim_2_2!M`,
	`transpose!M`,
	`zip!(A, reverse!A)`,
	`subseq!(A, 2, 5)`,
	`index_1!G`,
	`odmg_update!(A, 3, 999)`,
	// ⊥ producers: the payload message must render identically.
	`1 / 0`,
	`5 % 0`,
	`A[100]`,
	`M[4, 0]`,
	`M[0, 5]`,
	`get!S`,
	`get!{x | \x <- S, x > 100}`,
	`min!{x | \x <- S, x > 100}`,
	`[[3; 1, 2]]`,
	`[[ A[i] | \i < 20 ]]`, // ⊥ inside a tabulation: first in row-major order
	`(1/0) + 5`,            // strict propagation through arithmetic
	`{1/0, 2}`,             // ⊥ propagates out of constructors
}

// diffProf is the profiling level diffEngines installs on both engines.
// The default is full — the most invasive instrumentation, which must not
// perturb a single observable byte. The fuzz target varies it per input so
// every level (including off, where the compiled engine keeps its fused
// 2-D subscript path) stays under differential coverage.
var diffProf = eval.ProfFull

// diffEngines builds the interpreter and a serial compiled engine over the
// same globals and limits. Serial because resource-error payloads must be
// exact for the comparison; parallel counter parity has its own tests in
// internal/compile.
func diffEngines(globals map[string]object.Value, maxSteps int64, limits eval.Limits) (*eval.Evaluator, *compile.Engine) {
	in := eval.New(globals)
	in.MaxSteps = maxSteps
	in.Limits = limits
	in.SetProfiling(diffProf)
	ce := compile.New(globals)
	ce.MaxSteps = maxSteps
	ce.Limits = limits
	ce.Threshold = -1
	ce.SetProfiling(diffProf)
	return in, ce
}

// runDiff evaluates core under both engines and reports any observable
// divergence; it returns the interpreter's outcome for additional checks.
func runDiff(t *testing.T, globals map[string]object.Value, core ast.Expr, maxSteps int64, limits eval.Limits) (object.Value, error) {
	t.Helper()
	in, ce := diffEngines(globals, maxSteps, limits)
	iv, ierr := in.EvalExpr(context.Background(), core)
	cv, cerr := ce.EvalExpr(context.Background(), core)

	switch {
	case ierr != nil && cerr == nil:
		t.Errorf("interp errored (%v), compiled succeeded (%s)", ierr, cv)
	case ierr == nil && cerr != nil:
		t.Errorf("compiled errored (%v), interp succeeded (%s)", cerr, iv)
	case ierr != nil:
		var ire, cre *eval.ResourceError
		if errors.As(ierr, &ire) != errors.As(cerr, &cre) {
			t.Errorf("error class differs: interp %v, compiled %v", ierr, cerr)
		} else if ire != nil {
			if ire.Kind != cre.Kind || ire.Limit != cre.Limit {
				t.Errorf("resource errors differ: interp %v, compiled %v", ierr, cerr)
			}
		} else if ierr.Error() != cerr.Error() {
			t.Errorf("error text differs:\ninterp   %q\ncompiled %q", ierr, cerr)
		}
	default:
		if iv.String() != cv.String() {
			t.Errorf("values differ:\ninterp   %s\ncompiled %s", iv, cv)
		}
		if ic, cc := in.Counters(), ce.Counters(); ic != cc {
			t.Errorf("counters differ:\ninterp   %+v\ncompiled %+v", ic, cc)
		}
	}
	return iv, ierr
}

func diffSession(t *testing.T) *repl.Session {
	t.Helper()
	s, err := repl.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(diffSetup); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEngineDifferential runs the corpus through both engines, each query
// both unoptimized and optimized — the engines must agree on every core
// query the pipeline can hand them, not just post-optimizer forms. The
// whole corpus runs at every profiling level: instrumentation must never
// change an observable outcome.
func TestEngineDifferential(t *testing.T) {
	s := diffSession(t)
	globals := s.Env.Globals()
	defer func(level eval.ProfLevel) { diffProf = level }(diffProf)
	for _, level := range []eval.ProfLevel{eval.ProfOff, eval.ProfSampled, eval.ProfFull} {
		diffProf = level
		t.Run(level.String(), func(t *testing.T) {
			for _, src := range diffCorpus {
				t.Run(src, func(t *testing.T) {
					core, _, err := s.Compile(src)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					runDiff(t, globals, core, 0, eval.Limits{})
					runDiff(t, globals, s.Optimize(core), 0, eval.Limits{})
				})
			}
		})
	}
}

// TestEngineDifferentialResourceErrors pins budget-trip parity: both
// engines must report the same ResourceError kind and limit, at the same
// consumption, for step, cell and depth budgets.
func TestEngineDifferentialResourceErrors(t *testing.T) {
	s := diffSession(t)
	globals := s.Env.Globals()
	cases := []struct {
		name     string
		src      string
		maxSteps int64
		limits   eval.Limits
		kind     eval.ResourceKind
	}{
		{"steps", `summap(fn \i => i)!(gen!100000)`, 5000, eval.Limits{}, eval.ResourceSteps},
		{"cells", `[[ i | \i < 1000000 ]]`, 0, eval.Limits{MaxCells: 1000}, eval.ResourceCells},
		{"depth", `[[ f!(f!(f!(f!(f!(f!(f!(f!i))))))) | \i < 10 ]]`, 0, eval.Limits{MaxDepth: 6}, eval.ResourceDepth},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			core, _, err := s.Compile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			_, ierr := runDiff(t, globals, core, tc.maxSteps, tc.limits)
			var re *eval.ResourceError
			if !errors.As(ierr, &re) || re.Kind != tc.kind {
				t.Fatalf("err = %v, want a %v ResourceError (case under-budgeted?)", ierr, tc.kind)
			}
		})
	}
}

// FuzzEngineDifferential feeds arbitrary source through the full pipeline;
// whenever it compiles, both engines must agree byte-for-byte. Budgets keep
// adversarial inputs (huge tabulations, deep nesting) bounded — and budget
// trips themselves must then agree too.
func FuzzEngineDifferential(f *testing.F) {
	for _, src := range diffCorpus {
		f.Add(src)
	}
	f.Add(`let val \x = 3 in x * x end`)
	f.Add(`{| x + y | \x <- B, \y <- B |}`)

	s, err := repl.New()
	if err != nil {
		f.Fatal(err)
	}
	if _, err := s.Exec(diffSetup); err != nil {
		f.Fatal(err)
	}
	globals := s.Env.Globals()
	limits := eval.Limits{MaxCells: 1 << 20, MaxDepth: 10_000}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2000 || strings.ContainsAny(src, "\x00") {
			t.Skip()
		}
		core, _, err := s.Compile(src)
		if err != nil {
			t.Skip() // only well-typed queries reach an engine
		}
		// Vary the profiling level deterministically per input so the fuzz
		// explores all three instrumentation states — off keeps the fused
		// subscript path under coverage, full exercises every wrapper.
		diffProf = eval.ProfLevel(len(src) % 3)
		runDiff(t, globals, core, 200_000, limits)
		runDiff(t, globals, s.Optimize(core), 200_000, limits)
	})
}
